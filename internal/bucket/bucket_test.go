package bucket

import (
	"testing"
	"testing/quick"

	"liferaft/internal/catalog"
	"liferaft/internal/disk"
	"liferaft/internal/geom"
	"liferaft/internal/htm"
	"liferaft/internal/simclock"
)

func testCatalog(t *testing.T, n int) *catalog.Catalog {
	t.Helper()
	c, err := catalog.New(catalog.Config{Name: "t", N: n, Seed: 42, GenLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPartitionValidation(t *testing.T) {
	c := testCatalog(t, 100)
	if _, err := NewPartition(c, 0, 0); err == nil {
		t.Error("zero perBucket should fail")
	}
	if _, err := NewPartition(c, -5, 0); err == nil {
		t.Error("negative perBucket should fail")
	}
	if _, err := NewPartition(c, 10, -1); err == nil {
		t.Error("negative objectBytes should fail")
	}
}

func TestEqualSizedBuckets(t *testing.T) {
	c := testCatalog(t, 10000)
	p, err := NewPartition(c, 250, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBuckets() != 40 {
		t.Fatalf("NumBuckets = %d, want 40", p.NumBuckets())
	}
	for i := 0; i < p.NumBuckets(); i++ {
		b := p.Bucket(i)
		if b.Count() != 250 {
			t.Errorf("bucket %d has %d objects, want 250", i, b.Count())
		}
		if b.Index != i {
			t.Errorf("bucket %d Index = %d", i, b.Index)
		}
	}
	if p.PerBucket() != 250 || p.Catalog() != c {
		t.Error("accessors")
	}
}

func TestLastBucketRemainder(t *testing.T) {
	c := testCatalog(t, 1001)
	p, err := NewPartition(c, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBuckets() != 11 {
		t.Fatalf("NumBuckets = %d", p.NumBuckets())
	}
	if last := p.Bucket(10); last.Count() != 1 {
		t.Errorf("last bucket count = %d, want 1", last.Count())
	}
}

func TestBucketsCoverAllObjectsOnce(t *testing.T) {
	c := testCatalog(t, 5000)
	p, _ := NewPartition(c, 300, 0)
	var next int64
	for i := 0; i < p.NumBuckets(); i++ {
		b := p.Bucket(i)
		if b.Lo != next {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", i, b.Lo, next)
		}
		next = b.Hi
	}
	if next != 5000 {
		t.Fatalf("buckets cover %d objects, want 5000", next)
	}
}

func TestSpansOrderedAndValid(t *testing.T) {
	c := testCatalog(t, 8000)
	p, _ := NewPartition(c, 500, 0)
	for i := 0; i < p.NumBuckets(); i++ {
		s := p.Bucket(i).Span
		if !s.Valid() || s.Level() != htm.PaperLevel {
			t.Fatalf("bucket %d span invalid: %v", i, s)
		}
		if i > 0 && p.Bucket(i-1).Span.Start > s.Start {
			t.Fatalf("spans out of order at %d", i)
		}
	}
}

func TestMaterializedObjectsWithinSpan(t *testing.T) {
	c := testCatalog(t, 6000)
	p, _ := NewPartition(c, 400, 0)
	for i := 0; i < p.NumBuckets(); i += 5 {
		b := p.Bucket(i)
		objs := p.Materialize(i)
		if len(objs) != b.Count() {
			t.Fatalf("bucket %d materialized %d objects, want %d", i, len(objs), b.Count())
		}
		for j, o := range objs {
			if j > 0 && objs[j-1].HTMID > o.HTMID {
				t.Fatalf("bucket %d unsorted at %d", i, j)
			}
			if !b.Span.Contains(o.HTMID) {
				t.Fatalf("bucket %d object %d (htm %v) outside span %v", i, j, o.HTMID, b.Span)
			}
		}
	}
}

func TestBucketsForRanges(t *testing.T) {
	c := testCatalog(t, 6000)
	p, _ := NewPartition(c, 400, 0)
	// The exact span of bucket 3 must map back to (at least) bucket 3.
	b3 := p.Bucket(3)
	got := p.BucketsForRanges([]htm.Range{b3.Span})
	found := false
	for _, i := range got {
		if i == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("bucket 3's own span mapped to %v", got)
	}
	// Results sorted, unique, and actually overlapping.
	for i, idx := range got {
		if i > 0 && got[i-1] >= idx {
			t.Fatalf("unsorted/duplicate result: %v", got)
		}
		if !p.Bucket(idx).Span.Overlaps(b3.Span) {
			t.Fatalf("bucket %d does not overlap queried span", idx)
		}
	}
	if got := p.BucketsForRanges(nil); len(got) != 0 {
		t.Error("nil ranges should map to no buckets")
	}
}

func TestBucketsForRangesFindsObjectBuckets(t *testing.T) {
	// Soundness: the cover of a cap around any materialized object must
	// map to the bucket holding that object.
	c := testCatalog(t, 6000)
	p, _ := NewPartition(c, 400, 0)
	for i := 0; i < p.NumBuckets(); i += 3 {
		objs := p.Materialize(i)
		o := objs[len(objs)/2]
		cover := htm.CoverCap(geom.NewCap(o.Pos, geom.ArcsecToRad(10)), htm.PaperLevel)
		got := p.BucketsForRanges(cover)
		found := false
		for _, idx := range got {
			if idx == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("cap around object of bucket %d mapped to %v", i, got)
		}
	}
}

func TestBucketBytes(t *testing.T) {
	c := testCatalog(t, 1000)
	p, _ := NewPartition(c, 100, 0)
	if got := p.BucketBytes(0); got != 100*DefaultObjectBytes {
		t.Errorf("BucketBytes = %d", got)
	}
	p2, _ := NewPartition(c, 100, 512)
	if got := p2.BucketBytes(0); got != 100*512 {
		t.Errorf("custom BucketBytes = %d", got)
	}
}

func TestPaperGeometry(t *testing.T) {
	// 10,000-object buckets at 4 KiB/object are the paper's 40 MB, which
	// the disk model reads in ~Tb = 1.2 s.
	m := disk.SkyQuery()
	tb, _ := m.Calibrate(10000 * DefaultObjectBytes)
	if tb.Seconds() < 1.1 || tb.Seconds() > 1.3 {
		t.Errorf("paper bucket reads in %v, want ~1.2s", tb)
	}
}

func TestStoreCostAndMaterialization(t *testing.T) {
	c := testCatalog(t, 2000)
	p, _ := NewPartition(c, 200, 0)
	clk := simclock.NewVirtual()
	d := disk.New(disk.SkyQuery(), clk)

	s := NewStore(p, d, true)
	if !s.Materializing() || s.Partition() != p {
		t.Error("accessors")
	}
	objs, cost := s.ReadBucket(0)
	if len(objs) != 200 {
		t.Errorf("read returned %d objects", len(objs))
	}
	if cost != d.Model().SequentialRead(p.BucketBytes(0)) {
		t.Errorf("scan cost = %v", cost)
	}
	objs2, cost2 := s.Probe(0, 7)
	if len(objs2) != 200 {
		t.Errorf("probe returned %d objects", len(objs2))
	}
	if cost2 != 7*d.Model().SortedProbe() {
		t.Errorf("probe cost = %v", cost2)
	}

	cs := NewStore(p, d, false)
	objs3, _ := cs.ReadBucket(1)
	if objs3 != nil {
		t.Error("cost-only store should not materialize")
	}
	objs4, _ := cs.Probe(1, 3)
	if objs4 != nil {
		t.Error("cost-only probe should not materialize")
	}
	st := d.Stats()
	if st.SeqReads != 2 || st.Probes != 10 {
		t.Errorf("disk stats = %+v", st)
	}
}

// Property: every object ordinal falls in exactly one bucket and
// Materialize returns it there.
func TestQuickOrdinalToBucket(t *testing.T) {
	c := testCatalog(t, 3000)
	p, _ := NewPartition(c, 171, 0)
	f := func(x uint16) bool {
		ord := int64(x) % 3000
		idx := int(ord / 171)
		b := p.Bucket(idx)
		return ord >= b.Lo && ord < b.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

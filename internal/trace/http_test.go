package trace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestContextCarry(t *testing.T) {
	r := New(Config{})
	tr := r.Start("t", 1)
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("context did not carry the trace")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace should leave ctx unchanged")
	}
	if FromContext(nil) != nil {
		t.Fatal("nil ctx yielded a trace")
	}
}

func TestHandlerIndexAndDetail(t *testing.T) {
	now := time.Unix(0, 0)
	r := New(Config{Now: func() time.Time { return now }, SlowThreshold: time.Second})
	tr := r.Start("alice", 7)
	tr.Add(Span{Stage: StageAdmission, Attr: "admitted", Start: now, End: now})
	tr.Add(Span{Stage: StageService, Attr: AttrIndex, Key: 4, Err: "boom",
		Start: now, End: now.Add(3 * time.Second)}) // slow
	// Finish later than the last span: the capture must end at the span,
	// not at the Finish call.
	now = now.Add(4 * time.Second)
	id := r.Finish(tr).TraceID

	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("index status %d", rec.Code)
	}
	var idx index
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index json: %v\n%s", err, rec.Body.String())
	}
	if idx.Finished != 1 || idx.SlowCount != 1 || len(idx.Slow) != 1 || len(idx.Recent) != 1 {
		t.Fatalf("index = %+v", idx)
	}
	if idx.Slow[0].TraceID != id || idx.Slow[0].Err != "boom" || idx.Slow[0].Spans != 2 {
		t.Fatalf("slow summary = %+v", idx.Slow[0])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id.String(), nil))
	if rec.Code != 200 {
		t.Fatalf("detail status %d: %s", rec.Code, rec.Body.String())
	}
	var d Data
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("detail json: %v", err)
	}
	if d.TraceID != id || len(d.Spans) != 2 || d.ResponseSec != 3 || !d.Slow {
		t.Fatalf("detail = %+v", d)
	}
	if d.Spans[1].Stage != StageService || d.Spans[1].Key != 4 {
		t.Fatalf("detail span = %+v", d.Spans[1])
	}
	if !strings.Contains(rec.Body.String(), `"trace_id": "`+id.String()+`"`) {
		t.Fatal("detail body missing hex trace_id")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/ffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad id status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status %d", rec.Code)
	}
}

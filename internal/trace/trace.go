// Package trace is a dependency-free, allocation-conscious span recorder
// for request-scoped forensics: every query carries a trace from the
// gateway down through admission, the fair queue, the engine's bucket
// schedule, the store, and federation hops, so "why was *this* query
// slow?" — the hardest operational question a batch scheduler faces —
// has a post-hoc answer.
//
// The design mirrors internal/metric's nil-guard discipline: a nil
// *Trace (tracing disabled) makes every recording method a no-op with
// no allocation, so the engine's zero-alloc service loop stays
// zero-alloc; an enabled trace records into a fixed-size span slab
// under a mutex (shards and goroutines write concurrently) and never
// grows. Finished traces land in two bounded ring buffers — recent and
// slow — surfaced by the /debug/traces JSON endpoints, by OpenMetrics
// exemplars on latency histograms, and by skyquery -trace.
package trace

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"
)

// ID identifies one trace across nodes. 0 means "no trace" on the wire.
type ID uint64

// String renders the canonical 16-hex-digit form used in exemplars,
// /debug/traces URLs, and /v1/query responses.
//
//lifevet:allow hotpath-alloc -- rendering is only reached for sampled (traced) queries; the untraced steady state never formats an ID
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseID parses the canonical hex form (with or without leading zeros).
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return ID(v), nil
}

// MarshalJSON renders the ID as its canonical hex string.
func (id ID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON accepts the canonical hex string.
func (id *ID) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("trace: bad id json %s", b)
	}
	v, err := ParseID(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// Span stages recorded across the serving path. Attr carries the
// stage-specific detail (admission decision, join strategy); N, Key, and
// Score carry stage-specific numbers without formatting on the hot path.
const (
	StageAdmission   = "admission"      // serving-layer decision; Attr = admitted/rejected_*
	StageQueueWait   = "queue_wait"     // fair-queue residence, admission to dispatch
	StageEngine      = "engine"         // dispatch to engine completion (envelope)
	StageEngineAdmit = "engine_admit"   // pre-processor fan-out; N = assignments
	StageService     = "engine_service" // one bucket service touching this query; Attr = strategy, Key = bucket, Score = Ut, N = work units retired
	StageStoreRead   = "store_read"     // the service's store I/O; Attr = scan/probe, Key = bucket
	StageCancel      = "engine_cancel"  // query withdrawn from the queues
	StageFedExtract  = "federation_extract"
	StageFedMatch    = "federation_match" // one cross-match hop; Node = archive, N = shipped objects
)

// Join-strategy Attr values for StageService.
const (
	AttrScanHit  = "scan_hit"  // bucket served from the cache
	AttrScanCold = "scan_cold" // bucket read from the store
	AttrIndex    = "index"     // index probes instead of a full read
)

// Span is one recorded interval (or instant, when Start == End).
type Span struct {
	Stage string    `json:"stage"`
	Node  string    `json:"node,omitempty"` // remote archive for stitched/federation spans
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Attr  string    `json:"attr,omitempty"`
	N     int64     `json:"n,omitempty"`     // stage-specific count (objects, assignments)
	Key   int64     `json:"key,omitempty"`   // stage-specific index (bucket)
	Score float64   `json:"score,omitempty"` // Ut(i) at service time
	Err   string    `json:"err,omitempty"`
}

// MaxSpans bounds the per-trace span slab. A query serviced across more
// bucket picks than this keeps its earliest spans and counts the rest as
// dropped; the slab never grows, so a pathological query cannot turn the
// recorder into a memory leak.
const MaxSpans = 96

// Trace accumulates one query's spans. All methods are safe for
// concurrent use (shard workers record concurrently) and are no-ops on a
// nil receiver, so call sites need no tracing-enabled checks.
type Trace struct {
	id      ID
	tenant  string
	queryID uint64
	start   time.Time
	now     func() time.Time // the starting recorder's clock

	sampled bool

	mu sync.Mutex
	// spans grows on demand up to MaxSpans. A trace of a cached query
	// records a handful of spans; eagerly reserving the full slab would
	// make every trace pay MaxSpans worth of zeroing and GC scanning for
	// the worst case only disk-bound queries reach.
	spans       []Span
	dropped     int
	cacheHits   int64
	cacheMisses int64
}

// ID returns the trace ID, 0 on a nil trace.
func (t *Trace) ID() ID {
	if t == nil {
		return 0
	}
	return t.id
}

// Sampled reports whether this trace was selected by the recorder's
// sample rate (false on a nil trace). Sampling is a pure function of the
// trace ID, so every node a federated query touches agrees on it, and it
// gates only where the finished trace is *published* — the recent-ring
// archive, response trace_ids, exemplars — never what is recorded: spans
// still accumulate so a trace that turns out slow is force-captured in
// full.
func (t *Trace) Sampled() bool {
	if t == nil {
		return false
	}
	return t.sampled
}

// StartTime returns when the trace was started, the zero time on a nil
// trace. Instrumentation uses it to open a span at request arrival (e.g.
// the admission span covers arrival → decision).
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Now reads the clock of the recorder that started the trace (real or
// virtual), falling back to the wall clock on a nil trace. Layers
// without their own clock — the federation portal — stamp spans with it
// so every span shares the trace's time base.
func (t *Trace) Now() time.Time {
	if t == nil || t.now == nil {
		return time.Now()
	}
	return t.now()
}

// Add records one span; past MaxSpans it counts the span as dropped.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.add(s)
	t.mu.Unlock()
}

// add appends under the caller-held lock, counting overflow.
//
//lifevet:allow hotpath-alloc -- the span buffer is lazily grown once per trace; only sampled queries carry a non-nil Trace, so the untraced loop never reaches this
func (t *Trace) add(s Span) {
	if len(t.spans) < MaxSpans {
		if t.spans == nil {
			t.spans = make([]Span, 0, 16)
		}
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
}

// ServiceVisit records one bucket service touching this query — the
// service span, an optional store-read span (nil = cache hit, the
// common case, which then skips a span-sized copy), and the cache
// outcome — under a single lock. The service loop emits the three
// together for every (query, service) incidence, so batching them cuts
// the hot path from three lock round-trips to one.
func (t *Trace) ServiceVisit(svc Span, read *Span, hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.add(svc)
	if read != nil {
		t.add(*read)
	}
	if hit {
		t.cacheHits++
	} else {
		t.cacheMisses++
	}
	t.mu.Unlock()
}

// Cache counts one bucket-cache outcome attributed to this query.
func (t *Trace) Cache(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if hit {
		t.cacheHits++
	} else {
		t.cacheMisses++
	}
	t.mu.Unlock()
}

// Data is a finished (or in-flight) trace snapshot — the JSON shape
// /debug/traces serves.
type Data struct {
	TraceID     ID        `json:"trace_id"`
	Tenant      string    `json:"tenant,omitempty"`
	QueryID     uint64    `json:"query_id,omitempty"`
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	ResponseSec float64   `json:"response_sec"`
	Slow        bool      `json:"slow,omitempty"`
	Sampled     bool      `json:"sampled,omitempty"`
	CacheHits   int64     `json:"cache_hits,omitempty"`
	CacheMisses int64     `json:"cache_misses,omitempty"`
	Dropped     int       `json:"spans_dropped,omitempty"`
	Spans       []Span    `json:"spans"`
}

// Snapshot copies the trace's current state. End/ResponseSec are zero
// until the recorder finishes the trace.
func (t *Trace) Snapshot() Data {
	return t.snapshot(true)
}

// snapshot builds the Data view. When copySpans is false the snapshot
// aliases the slab instead of copying it — only Finish does this: the
// trace is terminal there, and a straggler Add (a cancel racing
// completion) appends past the snapshot's length without disturbing it.
func (t *Trace) snapshot(copySpans bool) Data {
	if t == nil {
		return Data{}
	}
	t.mu.Lock()
	spans := t.spans[:len(t.spans):len(t.spans)]
	if copySpans {
		spans = append([]Span(nil), t.spans...)
	}
	d := Data{
		TraceID: t.id, Tenant: t.tenant, QueryID: t.queryID, Start: t.start,
		CacheHits: t.cacheHits, CacheMisses: t.cacheMisses, Dropped: t.dropped,
		Spans: spans,
	}
	t.mu.Unlock()
	return d
}

// WireSpan is a span as shipped across the federation transport: times
// become nanosecond offsets from the trace start, so the caller can
// rebase a remote node's spans onto its own clock (the two clocks — one
// possibly virtual — share no epoch).
type WireSpan struct {
	Stage   string
	Attr    string
	Err     string
	N, Key  int64
	Score   float64
	StartNs int64
	EndNs   int64
}

// Wire exports the trace's spans in wire form (offsets from trace start).
func (t *Trace) Wire() []WireSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]WireSpan, len(t.spans))
	for i, s := range t.spans {
		out[i] = WireSpan{
			Stage: s.Stage, Attr: s.Attr, Err: s.Err, N: s.N, Key: s.Key, Score: s.Score,
			StartNs: s.Start.Sub(t.start).Nanoseconds(),
			EndNs:   s.End.Sub(t.start).Nanoseconds(),
		}
	}
	t.mu.Unlock()
	return out
}

// Stitch rebases a remote node's wire spans onto base (the local hop
// start) and records them under the given node name, so a cross-match
// hop's remote schedule appears inside the caller's trace.
func (t *Trace) Stitch(node string, base time.Time, spans []WireSpan) {
	if t == nil {
		return
	}
	for _, w := range spans {
		t.Add(Span{
			Stage: w.Stage, Node: node, Attr: w.Attr, Err: w.Err,
			N: w.N, Key: w.Key, Score: w.Score,
			Start: base.Add(time.Duration(w.StartNs)),
			End:   base.Add(time.Duration(w.EndNs)),
		})
	}
}

// Config tunes a Recorder.
type Config struct {
	// Now is the recorder's clock; nil means time.Now. A node on a
	// virtual clock passes its engine clock so trace timestamps line up
	// with the schedule being traced.
	Now func() time.Time
	// SlowThreshold routes finished traces whose response time meets or
	// exceeds it into the slow ring (default 2s — pair it with the
	// serving layer's -slo-p99).
	SlowThreshold time.Duration
	// RecentCap and SlowCap bound the two rings (defaults 256 and 64).
	RecentCap, SlowCap int
	// Sample is the fraction of traces published (archived in the recent
	// ring, echoed as trace_id, attached as exemplars). <= 0 or >= 1
	// means every trace. Slow traces are always captured regardless of
	// the rate — sampling thins the routine traffic, not the forensics.
	// Selection is deterministic on the trace ID, so federated nodes
	// agree without coordination.
	Sample float64
}

// Recorder owns trace lifecycle: Start issues IDs, Finish stamps the
// response time and archives the trace into the bounded recent ring and
// — when the response exceeded the slow threshold — the slow ring, which
// a burst of fast queries cannot evict. All methods are safe for
// concurrent use and no-ops on a nil receiver (Start returns a nil
// *Trace, which disables recording downstream).
type Recorder struct {
	now           func() time.Time
	slowThreshold time.Duration
	sampleCut     uint64 // IDs <= cut are sampled; MaxUint64 = all

	mu         sync.Mutex
	seed       uint64
	seq        uint64
	recent     []Data // ring, recentAt is the next write slot
	recentAt   int
	slow       []Data
	slowAt     int
	started    uint64
	finished   uint64
	slowN      uint64
	sampledOut uint64 // finished unsampled (and not slow): recorded but unpublished
}

// New builds a Recorder.
func New(cfg Config) *Recorder {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 2 * time.Second
	}
	if cfg.RecentCap <= 0 {
		cfg.RecentCap = 256
	}
	if cfg.SlowCap <= 0 {
		cfg.SlowCap = 64
	}
	cut := uint64(math.MaxUint64)
	if cfg.Sample > 0 && cfg.Sample < 1 {
		cut = uint64(cfg.Sample * float64(math.MaxUint64))
	}
	return &Recorder{
		now:           cfg.Now,
		slowThreshold: cfg.SlowThreshold,
		sampleCut:     cut,
		// Construction-time entropy for ID generation; wall time is fine
		// here even under a virtual clock (it is a seed, not a stamp).
		seed:   uint64(time.Now().UnixNano()),
		recent: make([]Data, 0, cfg.RecentCap),
		slow:   make([]Data, 0, cfg.SlowCap),
	}
}

// splitmix64 is the ID mixer (Steele et al.): one multiply-shift chain
// turns the sequential counter into well-distributed IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Start begins a trace for one query. Returns nil on a nil recorder.
func (r *Recorder) Start(tenant string, queryID uint64) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var id ID
	for id == 0 {
		r.seq++
		id = ID(splitmix64(r.seed ^ r.seq))
	}
	r.started++
	r.mu.Unlock()
	return &Trace{id: id, tenant: tenant, queryID: queryID, start: r.now(), now: r.now,
		sampled: uint64(id) <= r.sampleCut}
}

// StartRemote begins a continuation trace under a caller-issued ID — the
// remote half of a federation hop, whose spans ship back and stitch into
// the caller's trace. Returns nil on a nil recorder or a zero ID. The
// sampling decision is recomputed from the shared ID, so it matches the
// caller's when both run the same rate.
func (r *Recorder) StartRemote(id ID, tenant string, queryID uint64) *Trace {
	if r == nil || id == 0 {
		return nil
	}
	r.mu.Lock()
	r.started++
	r.mu.Unlock()
	return &Trace{id: id, tenant: tenant, queryID: queryID, start: r.now(), now: r.now,
		sampled: uint64(id) <= r.sampleCut}
}

// Finish stamps the trace's end, archives it, and returns the snapshot.
// Safe on a nil recorder or nil trace (returns a zero Data).
func (r *Recorder) Finish(t *Trace) Data {
	if r == nil || t == nil {
		return Data{}
	}
	d := t.snapshot(false)
	// The capture ends at the last recorded span, not at the Finish call:
	// under a virtual clock, concurrent engine work can advance time
	// between query completion and capture, and that drift belongs to no
	// stage of this query's serving path. ResponseSec then matches the
	// completion-anchored liferaft_response_seconds observation the
	// exemplar points at. Finish time is the fallback for span-less
	// traces.
	d.End = r.now()
	if last := lastSpanEnd(d.Spans); !last.IsZero() && !last.Before(d.Start) && last.Before(d.End) {
		d.End = last
	}
	d.ResponseSec = d.End.Sub(d.Start).Seconds()
	d.Slow = d.End.Sub(d.Start) >= r.slowThreshold
	d.Sampled = t.sampled
	r.mu.Lock()
	r.finished++
	// Sampling gates the recent-ring archive only; a slow trace is
	// force-captured even when unsampled (the rate thins routine traffic,
	// not forensics), and the slow ring below never consults the rate.
	if d.Sampled || d.Slow {
		if len(r.recent) < cap(r.recent) {
			r.recent = append(r.recent, d)
		} else {
			r.recent[r.recentAt] = d
		}
		r.recentAt = (r.recentAt + 1) % cap(r.recent)
	} else {
		r.sampledOut++
	}
	if d.Slow {
		r.slowN++
		if len(r.slow) < cap(r.slow) {
			r.slow = append(r.slow, d)
		} else {
			r.slow[r.slowAt] = d
		}
		r.slowAt = (r.slowAt + 1) % cap(r.slow)
	}
	r.mu.Unlock()
	return d
}

// lastSpanEnd returns the latest span end time, the zero time for an
// empty slice.
func lastSpanEnd(spans []Span) time.Time {
	var last time.Time
	for _, sp := range spans {
		if sp.End.After(last) {
			last = sp.End
		}
	}
	return last
}

// ringNewestFirst flattens a ring into newest-first order. next is the
// next write slot, so next-1 is the newest entry.
func ringNewestFirst(ring []Data, next int) []Data {
	out := make([]Data, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		out = append(out, ring[(next-1-i+2*len(ring))%len(ring)])
	}
	return out
}

// Recent returns the finished traces still in the recent ring, newest
// first.
func (r *Recorder) Recent() []Data {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringNewestFirst(r.recent, r.recentAt)
}

// Slow returns the slow-query capture buffer, newest first.
func (r *Recorder) Slow() []Data {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringNewestFirst(r.slow, r.slowAt)
}

// Get finds a finished trace by ID in either ring.
func (r *Recorder) Get(id ID) (Data, bool) {
	if r == nil {
		return Data{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ring := range [][]Data{r.slow, r.recent} {
		for i := range ring {
			if ring[i].TraceID == id {
				return ring[i], true
			}
		}
	}
	return Data{}, false
}

// Stats reports recorder lifetime counters: traces started, finished,
// classified slow, and sampled out (finished but unpublished — neither
// sampled nor slow).
func (r *Recorder) Stats() (started, finished, slow, sampledOut uint64) {
	if r == nil {
		return 0, 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.started, r.finished, r.slowN, r.sampledOut
}

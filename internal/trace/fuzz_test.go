package trace

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzTraceStitch decodes arbitrary wire-span JSON — the payload a
// federation peer returns — and stitches it onto a local trace, as
// federation.Client does after a remote hop. Hostile or corrupt span
// offsets (negative, enormous, inverted Start/End) must rebase and
// archive without panicking, and the stitched trace must still finish
// and export.
func FuzzTraceStitch(f *testing.F) {
	f.Add(`[{"Stage":"xmatch-remote","StartNs":1000,"EndNs":2500,"N":4}]`, "archive-b", int64(5_000))
	f.Add(`[{"Stage":"scan","StartNs":-9223372036854775808,"EndNs":9223372036854775807}]`, "", int64(-1))
	f.Add(`[{"Stage":"probe","StartNs":50,"EndNs":10,"Score":1e308},{"Stage":"","Err":"boom"}]`, "n", int64(0))
	f.Add(`[]`, "idle", int64(42))
	f.Fuzz(func(t *testing.T, raw string, node string, baseNs int64) {
		var spans []WireSpan
		if err := json.Unmarshal([]byte(raw), &spans); err != nil {
			return
		}
		r := New(Config{Sample: 1})
		tr := r.Start("fuzz", 1)
		if tr == nil {
			t.Fatal("Start returned nil trace with Sample 1")
		}
		tr.Stitch(node, tr.StartTime().Add(time.Duration(baseNs)), spans)
		want := len(spans)
		if want > MaxSpans {
			want = MaxSpans // past the cap, Add counts drops instead
		}
		if got := len(tr.Wire()); got != want {
			t.Fatalf("trace exports %d spans after stitching %d (cap %d)", got, len(spans), MaxSpans)
		}
		r.Finish(tr)
		if _, ok := r.Get(tr.ID()); !ok {
			t.Fatal("stitched trace was not archived")
		}
	})
}

package trace

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
)

// Summary is the index-listing shape for /debug/traces: everything an
// operator needs to pick a trace, without the span payload.
type Summary struct {
	TraceID     ID      `json:"trace_id"`
	Tenant      string  `json:"tenant,omitempty"`
	QueryID     uint64  `json:"query_id,omitempty"`
	ResponseSec float64 `json:"response_sec"`
	Spans       int     `json:"spans"`
	Slow        bool    `json:"slow,omitempty"`
	Err         string  `json:"err,omitempty"` // first span error, if any
}

// index is the /debug/traces response body.
type index struct {
	Started          uint64    `json:"started"`
	Finished         uint64    `json:"finished"`
	SlowCount        uint64    `json:"slow_count"`
	SampledOut       uint64    `json:"sampled_out,omitempty"`
	SlowThresholdSec float64   `json:"slow_threshold_sec"`
	Slow             []Summary `json:"slow"`
	Recent           []Summary `json:"recent"`
}

func summarize(ds []Data) []Summary {
	out := make([]Summary, len(ds))
	for i, d := range ds {
		s := Summary{TraceID: d.TraceID, Tenant: d.Tenant, QueryID: d.QueryID,
			ResponseSec: d.ResponseSec, Spans: len(d.Spans), Slow: d.Slow}
		for _, sp := range d.Spans {
			if sp.Err != "" {
				s.Err = sp.Err
				break
			}
		}
		out[i] = s
	}
	return out
}

// Handler serves the forensics endpoints:
//
//	GET /debug/traces        — JSON index: counters + slow and recent summaries
//	GET /debug/traces/{id}   — one full trace (spans included) by hex ID
//
// Mount it at both "/debug/traces" and "/debug/traces/" on a ServeMux.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(req.URL.Path, "/debug/traces")
		rest = strings.Trim(rest, "/")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if rest == "" {
			started, finished, slowN, sampledOut := r.Stats()
			enc.Encode(index{
				Started: started, Finished: finished, SlowCount: slowN, SampledOut: sampledOut,
				SlowThresholdSec: r.slowThreshold.Seconds(),
				Slow:             summarize(r.Slow()),
				Recent:           summarize(r.Recent()),
			})
			return
		}
		id, err := ParseID(rest)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		d, ok := r.Get(id)
		if !ok {
			http.Error(w, "trace not found (evicted or never finished)", http.StatusNotFound)
			return
		}
		enc.Encode(d)
	})
}

// NewContext and FromContext carry a *Trace through a request's context
// so the serving layer and engine can record spans without new plumbing
// through every signature.

type ctxKey struct{}

// NewContext returns ctx carrying tr. A nil tr returns ctx unchanged.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

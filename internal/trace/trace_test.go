package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestIDRoundTrip(t *testing.T) {
	id := ID(0x0123456789abcdef)
	if got := id.String(); got != "0123456789abcdef" {
		t.Fatalf("String() = %q", got)
	}
	back, err := ParseID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseID round trip: %v %v", back, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
	b, err := json.Marshal(id)
	if err != nil || string(b) != `"0123456789abcdef"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
	var dec ID
	if err := json.Unmarshal(b, &dec); err != nil || dec != id {
		t.Fatalf("UnmarshalJSON = %v, %v", dec, err)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	tr.Add(Span{Stage: StageAdmission})
	tr.Cache(true)
	tr.Stitch("x", time.Now(), []WireSpan{{Stage: "s"}})
	if tr.ID() != 0 || tr.Wire() != nil {
		t.Fatal("nil Trace leaked state")
	}
	if d := tr.Snapshot(); len(d.Spans) != 0 {
		t.Fatal("nil Snapshot has spans")
	}

	var r *Recorder
	if r.Start("t", 1) != nil {
		t.Fatal("nil Recorder started a trace")
	}
	if d := r.Finish(nil); d.TraceID != 0 {
		t.Fatal("nil Finish returned data")
	}
	if r.Recent() != nil || r.Slow() != nil {
		t.Fatal("nil rings non-empty")
	}
	if _, ok := r.Get(1); ok {
		t.Fatal("nil Get found a trace")
	}
}

func TestSlabBoundAndDropCount(t *testing.T) {
	r := New(Config{})
	tr := r.Start("t", 1)
	for i := 0; i < MaxSpans+10; i++ {
		tr.Add(Span{Stage: StageService, Key: int64(i)})
	}
	d := r.Finish(tr)
	if len(d.Spans) != MaxSpans {
		t.Fatalf("spans = %d, want %d", len(d.Spans), MaxSpans)
	}
	if d.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", d.Dropped)
	}
	// Earliest spans are the ones retained.
	if d.Spans[0].Key != 0 || d.Spans[MaxSpans-1].Key != MaxSpans-1 {
		t.Fatalf("slab kept wrong spans: first=%d last=%d", d.Spans[0].Key, d.Spans[MaxSpans-1].Key)
	}
}

func TestRingsAndSlowCapture(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	r := New(Config{Now: clock, SlowThreshold: time.Second, RecentCap: 4, SlowCap: 2})

	finishOne := func(d time.Duration) ID {
		tr := r.Start("t", 1)
		advance(d)
		data := r.Finish(tr)
		if want := d >= time.Second; data.Slow != want {
			t.Fatalf("dur %v: slow = %v, want %v", d, data.Slow, want)
		}
		return data.TraceID
	}

	slow1 := finishOne(3 * time.Second)
	var fast []ID
	for i := 0; i < 6; i++ { // overflow RecentCap=4
		fast = append(fast, finishOne(time.Millisecond))
	}

	// slow1 has been evicted from recent by the fast burst, but survives
	// in the slow ring — that is the whole point of the second ring.
	if _, ok := r.Get(slow1); !ok {
		t.Fatal("slow trace evicted by fast burst")
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(recent))
	}
	if recent[0].TraceID != fast[5] {
		t.Fatalf("recent not newest-first: got %v want %v", recent[0].TraceID, fast[5])
	}

	slow2 := finishOne(2 * time.Second)
	slow3 := finishOne(5 * time.Second)
	slows := r.Slow()
	if len(slows) != 2 {
		t.Fatalf("slow len = %d, want 2", len(slows))
	}
	if slows[0].TraceID != slow3 || slows[1].TraceID != slow2 {
		t.Fatalf("slow ring order wrong: %v %v", slows[0].TraceID, slows[1].TraceID)
	}
	started, finished, slowN, sampledOut := r.Stats()
	if started != 9 || finished != 9 || slowN != 3 || sampledOut != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 9/9/3/0", started, finished, slowN, sampledOut)
	}
}

func TestSamplingGatesRecentNotSlow(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	// Sample 1/64: over 2000 traces roughly 31 land in recent; exact
	// counts come from the deterministic ID cut, we only pin the
	// invariants.
	r := New(Config{Now: clock, SlowThreshold: time.Second, Sample: 1.0 / 64, RecentCap: 4096, SlowCap: 64})
	sampledN := 0
	for i := 0; i < 2000; i++ {
		tr := r.Start("t", uint64(i))
		if tr.Sampled() {
			sampledN++
		}
		advance(time.Millisecond)
		d := r.Finish(tr)
		if d.Sampled != tr.Sampled() {
			t.Fatalf("trace %d: Data.Sampled %v != Trace.Sampled %v", i, d.Sampled, tr.Sampled())
		}
	}
	if sampledN == 0 || sampledN == 2000 {
		t.Fatalf("sampledN = %d; 1/64 sampling selected nothing or everything", sampledN)
	}
	if got := len(r.Recent()); got != sampledN {
		t.Fatalf("recent holds %d traces, want the %d sampled ones", got, sampledN)
	}
	_, finished, _, sampledOut := r.Stats()
	if finished != 2000 || sampledOut != 2000-uint64(sampledN) {
		t.Fatalf("finished/sampledOut = %d/%d, want 2000/%d", finished, sampledOut, 2000-uint64(sampledN))
	}

	// A slow trace is force-captured even when unsampled: find an
	// unsampled ID and finish it past the threshold.
	var slow *Trace
	for i := 0; slow == nil; i++ {
		tr := r.Start("t", uint64(i))
		if !tr.Sampled() {
			slow = tr
		} else {
			r.Finish(tr)
		}
	}
	advance(5 * time.Second)
	d := r.Finish(slow)
	if !d.Slow || d.Sampled {
		t.Fatalf("forced capture: slow=%v sampled=%v, want slow unsampled", d.Slow, d.Sampled)
	}
	if _, ok := r.Get(d.TraceID); !ok {
		t.Fatal("unsampled slow trace not captured")
	}
	if got := r.Recent(); len(got) == 0 || got[0].TraceID != d.TraceID {
		t.Fatal("unsampled slow trace missing from recent ring")
	}
}

func TestSamplingDeterministicAcrossRecorders(t *testing.T) {
	// Two recorders at the same rate (different seeds) must agree on
	// every ID — the property federation relies on when a remote node
	// recomputes the decision via StartRemote.
	a := New(Config{Sample: 0.25})
	b := New(Config{Sample: 0.25})
	for i := 0; i < 1000; i++ {
		tr := a.Start("t", uint64(i))
		cont := b.StartRemote(tr.ID(), "t", uint64(i))
		if tr.Sampled() != cont.Sampled() {
			t.Fatalf("id %v: local sampled=%v remote sampled=%v", tr.ID(), tr.Sampled(), cont.Sampled())
		}
		a.Finish(tr)
		b.Finish(cont)
	}
	// Default rate (0 or 1) samples everything.
	full := New(Config{})
	if tr := full.Start("t", 1); !tr.Sampled() {
		t.Fatal("default config must sample every trace")
	}
}

func TestIDsUniqueAndNonZero(t *testing.T) {
	r := New(Config{})
	seen := map[ID]bool{}
	for i := 0; i < 10000; i++ {
		id := r.Start("t", uint64(i)).ID()
		if id == 0 {
			t.Fatal("zero trace ID issued")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %v", id)
		}
		seen[id] = true
	}
}

func TestWireRoundTripStitch(t *testing.T) {
	base := time.Unix(100, 0)
	r := New(Config{Now: func() time.Time { return base }})
	remote := r.StartRemote(42, "t", 7)
	if remote.ID() != 42 {
		t.Fatalf("StartRemote id = %v", remote.ID())
	}
	remote.Add(Span{Stage: StageService, Attr: AttrIndex, Key: 3, Score: 1.5, N: 9,
		Start: base.Add(10 * time.Millisecond), End: base.Add(30 * time.Millisecond)})
	wire := remote.Wire()
	if len(wire) != 1 || wire[0].StartNs != 10e6 || wire[0].EndNs != 30e6 {
		t.Fatalf("wire = %+v", wire)
	}

	local := r.Start("t", 7)
	hop := time.Unix(500, 0)
	local.Stitch("remote-archive", hop, wire)
	d := local.Snapshot()
	if len(d.Spans) != 1 {
		t.Fatalf("stitched spans = %d", len(d.Spans))
	}
	s := d.Spans[0]
	if s.Node != "remote-archive" || s.Stage != StageService || s.Key != 3 || s.Score != 1.5 || s.N != 9 {
		t.Fatalf("stitched span = %+v", s)
	}
	if !s.Start.Equal(hop.Add(10*time.Millisecond)) || !s.End.Equal(hop.Add(30*time.Millisecond)) {
		t.Fatalf("stitched rebase wrong: %v .. %v", s.Start, s.End)
	}
	if r.StartRemote(0, "t", 1) != nil {
		t.Fatal("StartRemote accepted zero ID")
	}
}

func TestConcurrentAdd(t *testing.T) {
	r := New(Config{})
	tr := r.Start("t", 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(Span{Stage: StageService})
				tr.Cache(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	d := r.Finish(tr)
	if len(d.Spans)+d.Dropped != 800 {
		t.Fatalf("spans+dropped = %d, want 800", len(d.Spans)+d.Dropped)
	}
	if d.CacheHits+d.CacheMisses != 800 {
		t.Fatalf("cache counts = %d, want 800", d.CacheHits+d.CacheMisses)
	}
}

func TestGetPrefersRings(t *testing.T) {
	r := New(Config{RecentCap: 8, SlowCap: 2, SlowThreshold: time.Hour})
	var ids []ID
	for i := 0; i < 3; i++ {
		tr := r.Start("tenant", uint64(i))
		tr.Add(Span{Stage: StageAdmission, Attr: "admitted"})
		ids = append(ids, r.Finish(tr).TraceID)
	}
	for _, id := range ids {
		d, ok := r.Get(id)
		if !ok || d.TraceID != id {
			t.Fatalf("Get(%v) = %v, %v", id, d.TraceID, ok)
		}
	}
	if _, ok := r.Get(ID(12345)); ok {
		t.Fatal("Get found an unknown id")
	}
}

func BenchmarkTraceAdd(b *testing.B) {
	r := New(Config{})
	tr := r.Start("t", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.mu.Lock() // reset the slab so Add stays on the store path
		tr.spans = tr.spans[:0]
		tr.mu.Unlock()
		tr.Add(Span{Stage: StageService, Key: 1, Score: 2.0})
	}
}

func BenchmarkNilTraceAdd(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(Span{Stage: StageService})
	}
	if testing.AllocsPerRun(100, func() { tr.Add(Span{Stage: StageService}) }) != 0 {
		b.Fatal("nil Add allocates")
	}
}

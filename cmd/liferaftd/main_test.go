package main

import (
	"testing"
	"time"
)

// defaults mirrors the flag defaults for the validation table test.
func defaultOptions() options {
	return options{
		archive: "sdss", addr: "127.0.0.1:7701", baseN: 200_000, baseSeed: 42,
		genLevel: 5, perBucket: 500, alpha: 0.25, cache: 20, shards: 1, virtual: true,
		rateMode: "adaptive", sloP99: 2 * time.Second, traceSample: 1,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		ok     bool
	}{
		{"defaults", func(o *options) {}, true},
		{"alpha low", func(o *options) { o.alpha = -0.01 }, false},
		{"alpha high", func(o *options) { o.alpha = 1.01 }, false},
		{"alpha boundary 0", func(o *options) { o.alpha = 0 }, true},
		{"alpha boundary 1", func(o *options) { o.alpha = 1 }, true},
		{"bucket zero", func(o *options) { o.perBucket = 0 }, false},
		{"bucket negative", func(o *options) { o.perBucket = -5 }, false},
		{"cache zero", func(o *options) { o.cache = 0 }, false},
		{"shards zero", func(o *options) { o.shards = 0 }, false},
		{"shards negative", func(o *options) { o.shards = -2 }, false},
		{"objects zero", func(o *options) { o.baseN = 0 }, false},
		{"rate negative", func(o *options) { o.rate = -1 }, false},
		{"rate positive", func(o *options) { o.rate = 10 }, true},
		{"queue-depth negative", func(o *options) { o.queueDepth = -1 }, false},
		{"tenants good", func(o *options) { o.tenants = "vip:4,batch" }, true},
		{"tenants bad weight", func(o *options) { o.tenants = "vip:zero" }, false},
		{"tenants zero weight", func(o *options) { o.tenants = "vip:0" }, false},
		{"tenants empty name", func(o *options) { o.tenants = ":3" }, false},
		{"peers good", func(o *options) { o.peers = "twomass=127.0.0.1:7702" }, true},
		{"peers bad", func(o *options) { o.peers = "twomass" }, false},
		{"data-dir", func(o *options) { o.dataDir = "/tmp/lfseg" }, true},
		{"data-dir with stride", func(o *options) { o.dataDir = "/tmp/lfseg"; o.objectBytes = 256 }, true},
		{"object-bytes negative", func(o *options) { o.dataDir = "/tmp/lfseg"; o.objectBytes = -1 }, false},
		{"object-bytes without data-dir", func(o *options) { o.objectBytes = 256 }, false},
		{"rate-mode static", func(o *options) { o.rateMode = "static" }, true},
		{"rate-mode bogus", func(o *options) { o.rateMode = "turbo" }, false},
		{"slo-p99 zero", func(o *options) { o.sloP99 = 0 }, false},
		{"tiered", func(o *options) {
			o.dataDir = "/tmp/lfseg"
			o.cacheDir = "/tmp/lfcache"
			o.cacheDiskMB = 256
		}, true},
		{"tiered with prefetch", func(o *options) {
			o.dataDir = "/tmp/lfseg"
			o.cacheDir = "/tmp/lfcache"
			o.cacheDiskMB = 256
			o.prefetch = 8
			o.prefetchInflight = 4
		}, true},
		{"cache-dir without data-dir", func(o *options) { o.cacheDir = "/tmp/lfcache"; o.cacheDiskMB = 256 }, false},
		{"cache-dir without capacity", func(o *options) { o.dataDir = "/tmp/lfseg"; o.cacheDir = "/tmp/lfcache" }, false},
		{"cache-disk-mb without cache-dir", func(o *options) { o.dataDir = "/tmp/lfseg"; o.cacheDiskMB = 256 }, false},
		{"prefetch without cache-dir", func(o *options) { o.dataDir = "/tmp/lfseg"; o.prefetch = 8 }, false},
		{"prefetch negative", func(o *options) {
			o.dataDir = "/tmp/lfseg"
			o.cacheDir = "/tmp/lfcache"
			o.cacheDiskMB = 256
			o.prefetch = -1
		}, false},
		{"prefetch-inflight without cache-dir", func(o *options) { o.prefetchInflight = 2 }, false},
		{"trace-sample zero", func(o *options) { o.traceSample = 0 }, false},
		{"trace-sample high", func(o *options) { o.traceSample = 1.5 }, false},
		{"trace-sample fractional", func(o *options) { o.traceSample = 0.01 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := defaultOptions()
			tc.mutate(&o)
			err := o.validate()
			if tc.ok && err != nil {
				t.Errorf("validate() = %v, want ok", err)
			}
			if !tc.ok && err == nil {
				t.Error("validate() accepted a bad configuration")
			}
		})
	}
}

func TestParseTenants(t *testing.T) {
	ts, err := parseTenants("vip:4, batch ,slow:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 || ts[0].Name != "vip" || ts[0].Weight != 4 ||
		ts[1].Name != "batch" || ts[1].Weight != 0 || ts[2].Weight != 1 {
		t.Errorf("tenants = %+v", ts)
	}
}

func TestServingConfigGating(t *testing.T) {
	o := defaultOptions()
	if cfg := o.servingConfig(nil, nil); cfg != nil {
		t.Errorf("default flags should not enable the serving layer (cfg=%v)", cfg)
	}
	o.httpAddr = "127.0.0.1:0"
	if cfg := o.servingConfig(nil, nil); cfg == nil {
		t.Error("-http should enable the serving layer")
	}
	o = defaultOptions()
	o.rate = 25
	if cfg := o.servingConfig(nil, nil); cfg == nil || cfg.DefaultRate != 25 {
		t.Errorf("-rate should enable the serving layer (cfg=%+v)", cfg)
	}
}

func TestBuildCatalogBase(t *testing.T) {
	cat, err := buildCatalog("sdss", 5000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Name() != "sdss" || cat.Total() != 5000 {
		t.Errorf("base catalog: %s/%d", cat.Name(), cat.Total())
	}
}

func TestBuildCatalogDerived(t *testing.T) {
	cat, err := buildCatalog("twomass", 5000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Name() != "twomass" {
		t.Errorf("name = %s", cat.Name())
	}
	// The derived fraction (0.8 for twomass) applies.
	frac := float64(cat.Total()) / 5000
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("derived fraction = %v", frac)
	}
	// Determinism across daemons: a second build is identical.
	again, err := buildCatalog("twomass", 5000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if again.Total() != cat.Total() {
		t.Error("derived catalog not deterministic across builds")
	}
}

func TestBuildCatalogUnknown(t *testing.T) {
	if _, err := buildCatalog("hubble", 100, 1, 3); err == nil {
		t.Error("unknown archive should fail")
	}
}

package main

import "testing"

func TestBuildCatalogBase(t *testing.T) {
	cat, err := buildCatalog("sdss", 5000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Name() != "sdss" || cat.Total() != 5000 {
		t.Errorf("base catalog: %s/%d", cat.Name(), cat.Total())
	}
}

func TestBuildCatalogDerived(t *testing.T) {
	cat, err := buildCatalog("twomass", 5000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Name() != "twomass" {
		t.Errorf("name = %s", cat.Name())
	}
	// The derived fraction (0.8 for twomass) applies.
	frac := float64(cat.Total()) / 5000
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("derived fraction = %v", frac)
	}
	// Determinism across daemons: a second build is identical.
	again, err := buildCatalog("twomass", 5000, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if again.Total() != cat.Total() {
		t.Error("derived catalog not deterministic across builds")
	}
}

func TestBuildCatalogUnknown(t *testing.T) {
	if _, err := buildCatalog("hubble", 100, 1, 3); err == nil {
		t.Error("unknown archive should fail")
	}
}

// Command liferaftd serves one archive node of a LifeRaft federation over
// TCP. Every daemon synthesizes its catalog deterministically from the
// shared base survey parameters, so independently started daemons hold
// correlated archives (the same sky re-observed), exactly what
// cross-matching needs.
//
// A three-archive federation on one machine:
//
//	liferaftd -archive sdss    -addr 127.0.0.1:7701 &
//	liferaftd -archive twomass -addr 127.0.0.1:7702 &
//	liferaftd -archive usnob   -addr 127.0.0.1:7703 &
//	skyquery -nodes sdss=127.0.0.1:7701,twomass=127.0.0.1:7702,usnob=127.0.0.1:7703 \
//	         -archives twomass,sdss,usnob -ra 150 -dec 20 -radius 4
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"liferaft/internal/catalog"
	"liferaft/internal/federation"
	"liferaft/internal/geom"
	"liferaft/internal/simclock"
)

func main() {
	archive := flag.String("archive", "sdss", "archive to serve: sdss (base) or any derived name (twomass, usnob, ...)")
	addr := flag.String("addr", "127.0.0.1:7701", "listen address")
	baseN := flag.Int("objects", 200_000, "base survey size in objects")
	baseSeed := flag.Int64("seed", 42, "base survey seed (must match across the federation)")
	genLevel := flag.Int("genlevel", 5, "catalog materialization level")
	perBucket := flag.Int("bucket", 500, "objects per bucket")
	alpha := flag.Float64("alpha", 0.25, "LifeRaft age bias")
	cacheBuckets := flag.Int("cache", 20, "bucket cache capacity")
	shards := flag.Int("shards", 1, "disk/worker shards for this node's engine (1 = single disk)")
	virtual := flag.Bool("virtual-clock", true, "charge modeled I/O cost to a virtual clock (instant) instead of sleeping")
	flag.Parse()

	if err := run(*archive, *addr, *baseN, *baseSeed, *genLevel, *perBucket, *alpha, *cacheBuckets, *shards, *virtual); err != nil {
		fmt.Fprintf(os.Stderr, "liferaftd: %v\n", err)
		os.Exit(1)
	}
}

// derivedParams fixes the per-archive derivation so that every daemon in a
// federation agrees on each archive's content.
var derivedParams = map[string]struct {
	seedOffset int64
	fraction   float64
}{
	"twomass": {1, 0.8},
	"usnob":   {2, 0.7},
	"first":   {3, 0.3},
	"galex":   {4, 0.4},
	"rosat":   {5, 0.1},
}

func buildCatalog(archive string, baseN int, baseSeed int64, genLevel int) (*catalog.Catalog, error) {
	base, err := catalog.New(catalog.Config{
		Name: "sdss", N: baseN, Seed: baseSeed, GenLevel: genLevel, CacheTrixels: true,
	})
	if err != nil {
		return nil, err
	}
	if archive == "sdss" {
		return base, nil
	}
	p, ok := derivedParams[archive]
	if !ok {
		return nil, fmt.Errorf("unknown archive %q (sdss, twomass, usnob, first, galex, rosat)", archive)
	}
	return catalog.NewDerived(base, catalog.DerivedConfig{
		Name: archive, Seed: baseSeed + p.seedOffset, Fraction: p.fraction,
		JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
	})
}

func run(archive, addr string, baseN int, baseSeed int64, genLevel, perBucket int, alpha float64, cacheBuckets, shards int, virtual bool) error {
	fmt.Printf("synthesizing archive %q (%d base objects, seed %d)...\n", archive, baseN, baseSeed)
	cat, err := buildCatalog(archive, baseN, baseSeed, genLevel)
	if err != nil {
		return err
	}
	var clk simclock.Clock = simclock.Real{}
	if virtual {
		clk = simclock.NewVirtual()
	}
	node, err := federation.NewNode(federation.NodeConfig{
		Catalog: cat, ObjectsPerBucket: perBucket,
		Alpha: alpha, CacheBuckets: cacheBuckets, Shards: shards, Clock: clk,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	srv, err := federation.Serve(node, addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("archive %q serving %d objects on %s (alpha=%.2f, shards=%d)\n",
		archive, cat.Total(), srv.Addr(), alpha, shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

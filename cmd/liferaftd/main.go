// Command liferaftd serves one archive node of a LifeRaft federation over
// TCP — and, with -http, over an HTTP+JSON gateway that accepts SkyQL.
// Every daemon synthesizes its catalog deterministically from the shared
// base survey parameters, so independently started daemons hold correlated
// archives (the same sky re-observed), exactly what cross-matching needs.
//
// A three-archive federation on one machine:
//
//	liferaftd -archive sdss    -addr 127.0.0.1:7701 &
//	liferaftd -archive twomass -addr 127.0.0.1:7702 &
//	liferaftd -archive usnob   -addr 127.0.0.1:7703 &
//	skyquery -nodes sdss=127.0.0.1:7701,twomass=127.0.0.1:7702,usnob=127.0.0.1:7703 \
//	         -archives twomass,sdss,usnob -ra 150 -dec 20 -radius 4
//
// Multi-tenant serving: -rate, -queue-depth, and -tenants put an admission
// control + fair queueing layer in front of the engine; -http additionally
// opens the gateway (POST /v1/query, GET /v1/stats, GET /metrics,
// GET /healthz), which executes SkyQL against this node and any -peers.
// By default admission rates are self-tuning (-rate-mode=adaptive): an
// AIMD controller cuts backlogged tenants' rates when the engine's p99
// breaches -slo-p99 and regrows them on headroom. -rate-mode=static keeps
// the configured rates fixed. Every daemon exposes its full metric set in
// Prometheus text format on /metrics (see docs/OPERATIONS.md):
//
//	liferaftd -archive sdss -addr 127.0.0.1:7701 \
//	    -http 127.0.0.1:8080 -rate 50 -queue-depth 32 -tenants vip:4 \
//	    -peers twomass=127.0.0.1:7702,usnob=127.0.0.1:7703
//	curl -s 127.0.0.1:8080/v1/query -d '{"tenant":"vip","query":
//	  "SELECT * FROM sdss s, twomass t WHERE XMATCH(s,t) < 5 AND REGION(CIRCLE J2000 150 20 4)"}'
//
// Persistent storage: -data-dir serves this node's buckets from an
// on-disk segment store (built there on first start; see
// internal/segment) with real I/O on the real clock, instead of the
// analytic disk model. -object-bytes shrinks the per-object stride for
// small installations:
//
//	liferaftd -archive sdss -addr 127.0.0.1:7701 \
//	    -data-dir /var/lib/liferaft/sdss -object-bytes 512
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/federation"
	"liferaft/internal/geom"
	"liferaft/internal/metric"
	"liferaft/internal/segment"
	"liferaft/internal/server"
	"liferaft/internal/simclock"
	"liferaft/internal/skyql"
	"liferaft/internal/trace"
)

// options collects every flag, so validation is testable as one unit.
type options struct {
	archive     string
	addr        string
	baseN       int
	baseSeed    int64
	genLevel    int
	perBucket   int
	alpha       float64
	cache       int
	shards      int
	virtual     bool
	httpAddr    string
	debugAddr   string
	tenants     string
	rate        float64
	rateMode    string
	sloP99      time.Duration
	queueDepth  int
	peers       string
	dataDir     string
	objectBytes int64

	cacheDir         string
	cacheDiskMB      int64
	prefetch         int
	prefetchInflight int
	traceSample      float64
}

func main() {
	var o options
	flag.StringVar(&o.archive, "archive", "sdss", "archive to serve: sdss (base) or any derived name (twomass, usnob, ...)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7701", "gob TCP listen address")
	flag.IntVar(&o.baseN, "objects", 200_000, "base survey size in objects")
	flag.Int64Var(&o.baseSeed, "seed", 42, "base survey seed (must match across the federation)")
	flag.IntVar(&o.genLevel, "genlevel", 5, "catalog materialization level")
	flag.IntVar(&o.perBucket, "bucket", 500, "objects per bucket")
	flag.Float64Var(&o.alpha, "alpha", 0.25, "LifeRaft age bias in [0,1]")
	flag.IntVar(&o.cache, "cache", 20, "bucket cache capacity")
	flag.IntVar(&o.shards, "shards", 1, "disk/worker shards for this node's engine (1 = single disk)")
	flag.BoolVar(&o.virtual, "virtual-clock", true, "charge modeled I/O cost to a virtual clock (instant) instead of sleeping")
	flag.StringVar(&o.httpAddr, "http", "", "HTTP gateway listen address (empty = disabled)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "debug listen address serving /debug/traces and /debug/pprof (empty = disabled)")
	flag.StringVar(&o.tenants, "tenants", "", "pre-registered tenants as name:weight pairs, e.g. vip:4,batch:1")
	flag.Float64Var(&o.rate, "rate", 0, "per-tenant admission rate in queries/sec (0 = unlimited; in adaptive mode, the AIMD regrowth ceiling)")
	flag.StringVar(&o.rateMode, "rate-mode", "adaptive", "admission rate control: adaptive (AIMD self-tuning, the default) or static (rates stay as configured)")
	flag.DurationVar(&o.sloP99, "slo-p99", 2*time.Second, "target p99 response time driving the adaptive rate controller")
	flag.IntVar(&o.queueDepth, "queue-depth", 0, "per-tenant pending-queue bound (0 = serving-layer default)")
	flag.StringVar(&o.peers, "peers", "", "peer archives for gateway cross-matches as name=addr pairs")
	flag.StringVar(&o.dataDir, "data-dir", "", "serve buckets from the segment store under this directory (real I/O; built on first start, implies -virtual-clock=false)")
	flag.Int64Var(&o.objectBytes, "object-bytes", 0, "on-disk bytes per object for -data-dir (0 = the paper's 4096)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "layer the persistent disk cache tier under this directory (requires -data-dir; restarts warm)")
	flag.Int64Var(&o.cacheDiskMB, "cache-disk-mb", 0, "disk cache tier capacity in MiB (required with -cache-dir)")
	flag.IntVar(&o.prefetch, "prefetch", 0, "prefetch the top-K buckets of the scheduler's own orderings into the disk tier after each pick (0 = disabled; requires -cache-dir)")
	flag.IntVar(&o.prefetchInflight, "prefetch-inflight", 0, "concurrent background tier promotions (0 = tier default)")
	flag.Float64Var(&o.traceSample, "trace-sample", 1, "fraction of traces published (trace_id echo, recent ring, exemplars) in (0,1]; slow queries are always captured")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "liferaftd: %v\n", err)
		os.Exit(1)
	}
}

// validate rejects misconfigurations at startup with a clear error instead
// of misbehaving hours into a run.
func (o options) validate() error {
	if o.alpha < 0 || o.alpha > 1 {
		return fmt.Errorf("-alpha %v out of [0,1]", o.alpha)
	}
	if o.perBucket <= 0 {
		return fmt.Errorf("-bucket %d must be positive", o.perBucket)
	}
	if o.cache <= 0 {
		return fmt.Errorf("-cache %d must be positive", o.cache)
	}
	if o.shards <= 0 {
		return fmt.Errorf("-shards %d must be positive", o.shards)
	}
	if o.baseN <= 0 {
		return fmt.Errorf("-objects %d must be positive", o.baseN)
	}
	if o.rate < 0 {
		return fmt.Errorf("-rate %v must be non-negative", o.rate)
	}
	if o.rateMode != string(server.RateAdaptive) && o.rateMode != string(server.RateStatic) {
		return fmt.Errorf("-rate-mode %q must be adaptive or static", o.rateMode)
	}
	if o.sloP99 <= 0 {
		return fmt.Errorf("-slo-p99 %v must be positive", o.sloP99)
	}
	if o.queueDepth < 0 {
		return fmt.Errorf("-queue-depth %d must be non-negative", o.queueDepth)
	}
	if o.objectBytes < 0 {
		return fmt.Errorf("-object-bytes %d must be non-negative", o.objectBytes)
	}
	if o.objectBytes != 0 && o.dataDir == "" {
		return fmt.Errorf("-object-bytes only makes sense with -data-dir")
	}
	if o.cacheDir != "" && o.dataDir == "" {
		return fmt.Errorf("-cache-dir only makes sense with -data-dir (the tier caches segment reads)")
	}
	if o.cacheDir != "" && o.cacheDiskMB <= 0 {
		return fmt.Errorf("-cache-dir requires a positive -cache-disk-mb capacity")
	}
	if o.cacheDiskMB != 0 && o.cacheDir == "" {
		return fmt.Errorf("-cache-disk-mb only makes sense with -cache-dir")
	}
	if o.prefetch < 0 {
		return fmt.Errorf("-prefetch %d must be non-negative", o.prefetch)
	}
	if o.prefetch > 0 && o.cacheDir == "" {
		return fmt.Errorf("-prefetch requires -cache-dir (the disk tier is the prefetch target)")
	}
	if o.prefetchInflight < 0 {
		return fmt.Errorf("-prefetch-inflight %d must be non-negative", o.prefetchInflight)
	}
	if o.prefetchInflight != 0 && o.cacheDir == "" {
		return fmt.Errorf("-prefetch-inflight only makes sense with -cache-dir")
	}
	if o.traceSample <= 0 || o.traceSample > 1 {
		return fmt.Errorf("-trace-sample %v out of (0,1]", o.traceSample)
	}
	if _, err := parseTenants(o.tenants); err != nil {
		return err
	}
	if _, err := parsePeers(o.peers); err != nil {
		return err
	}
	return nil
}

// parseTenants parses "name:weight,name:weight" (weight optional).
func parseTenants(s string) ([]server.TenantConfig, error) {
	if s == "" {
		return nil, nil
	}
	var out []server.TenantConfig
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		if name == "" {
			return nil, fmt.Errorf("-tenants: empty tenant name in %q", s)
		}
		tc := server.TenantConfig{Name: name}
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("-tenants: bad weight %q for tenant %q", weightStr, name)
			}
			tc.Weight = w
		}
		out = append(out, tc)
	}
	return out, nil
}

// parsePeers parses "name=addr,name=addr".
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("-peers: %q is not name=addr", part)
		}
		out[name] = addr
	}
	return out, nil
}

// servingConfig builds the admission-control config when any serving flag
// is set; nil keeps the node transparent (the pre-serving behaviour).
// tenants is the already-parsed -tenants value.
func (o options) servingConfig(tenants []server.TenantConfig, reg *metric.Registry) *server.Config {
	if o.httpAddr == "" && o.rate == 0 && o.queueDepth == 0 && len(tenants) == 0 {
		return nil
	}
	return &server.Config{
		DefaultRate: o.rate,
		QueueDepth:  o.queueDepth,
		Tenants:     tenants,
		RateMode:    server.RateMode(o.rateMode),
		SLOP99:      o.sloP99,
		Registry:    reg,
	}
}

// derivedParams fixes the per-archive derivation so that every daemon in a
// federation agrees on each archive's content.
var derivedParams = map[string]struct {
	seedOffset int64
	fraction   float64
}{
	"twomass": {1, 0.8},
	"usnob":   {2, 0.7},
	"first":   {3, 0.3},
	"galex":   {4, 0.4},
	"rosat":   {5, 0.1},
}

func buildCatalog(archive string, baseN int, baseSeed int64, genLevel int) (*catalog.Catalog, error) {
	base, err := catalog.New(catalog.Config{
		Name: "sdss", N: baseN, Seed: baseSeed, GenLevel: genLevel, CacheTrixels: true,
	})
	if err != nil {
		return nil, err
	}
	if archive == "sdss" {
		return base, nil
	}
	p, ok := derivedParams[archive]
	if !ok {
		return nil, fmt.Errorf("unknown archive %q (sdss, twomass, usnob, first, galex, rosat)", archive)
	}
	return catalog.NewDerived(base, catalog.DerivedConfig{
		Name: archive, Seed: baseSeed + p.seedOffset, Fraction: p.fraction,
		JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
	})
}

// gatewayExec builds the /v1/query executor: parse SkyQL, compile to a
// federation plan, and execute it against the portal under the caller's
// tenant and deadline.
func gatewayExec(portal *federation.Portal) func(ctx context.Context, tenant, query string) (any, error) {
	var nextID atomic.Uint64
	return func(ctx context.Context, tenant, query string) (any, error) {
		q, err := skyql.Parse(query)
		if err != nil {
			return nil, &server.BadRequestError{Err: err}
		}
		fq, err := skyql.Compile(q, nextID.Add(1), 0)
		if err != nil {
			return nil, &server.BadRequestError{Err: err}
		}
		fq.Tenant = tenant
		rs, err := portal.ExecuteCtx(ctx, fq)
		if err != nil {
			return nil, err
		}
		rows := rs.Rows
		if q.Limit > 0 && len(rows) > q.Limit {
			rows = rows[:q.Limit]
		}
		return map[string]any{
			"rows":        rows,
			"row_count":   len(rs.Rows),
			"hop_elapsed": rs.HopElapsed,
			"shipped":     rs.Shipped,
		}, nil
	}
}

func run(o options) error {
	if err := o.validate(); err != nil {
		return err
	}
	// validate() already vetted both strings; parse once and reuse.
	tenants, err := parseTenants(o.tenants)
	if err != nil {
		return err
	}
	peers, err := parsePeers(o.peers)
	if err != nil {
		return err
	}
	reg := metric.NewRegistry()
	serving := o.servingConfig(tenants, reg)
	fmt.Printf("synthesizing archive %q (%d base objects, seed %d)...\n", o.archive, o.baseN, o.baseSeed)
	cat, err := buildCatalog(o.archive, o.baseN, o.baseSeed, o.genLevel)
	if err != nil {
		return err
	}
	var clk simclock.Clock = simclock.Real{}
	if o.virtual && o.dataDir == "" {
		clk = simclock.NewVirtual()
	}
	if o.dataDir != "" {
		// Build the segment store if it is missing before the node
		// opens (and validates) it — daemons synthesize their catalog
		// deterministically, so the store is reproducible from the
		// same flags. An existing store is left for the node's own
		// open-and-verify pass, not verified twice.
		if _, err := os.Stat(filepath.Join(o.dataDir, segment.ManifestName)); os.IsNotExist(err) {
			part, err := bucket.NewPartition(cat, o.perBucket, o.objectBytes)
			if err != nil {
				return err
			}
			start := time.Now()
			wst, err := segment.Write(o.dataDir, part, segment.WriteOptions{})
			if err != nil {
				return err
			}
			fmt.Printf("built segment store under %s: %d segments, %.1f MB in %v\n",
				o.dataDir, wst.Segments, float64(wst.Bytes)/1e6, time.Since(start).Round(time.Millisecond))
		} else if err != nil {
			return err
		} else {
			fmt.Printf("opening segment store under %s\n", o.dataDir)
		}
	}
	// One recorder serves the node, the gateway, and the debug server:
	// requests traced at the gateway and continuations started by remote
	// portals land in the same rings. Slow-query capture keys to the same
	// threshold the AIMD controller defends (-slo-p99).
	rec := trace.New(trace.Config{Now: clk.Now, SlowThreshold: o.sloP99, Sample: o.traceSample})
	node, err := federation.NewNode(federation.NodeConfig{
		Catalog: cat, ObjectsPerBucket: o.perBucket,
		Alpha: o.alpha, CacheBuckets: o.cache, Shards: o.shards, Clock: clk,
		Serving: serving, DataDir: o.dataDir, ObjectBytes: o.objectBytes,
		CacheDir: o.cacheDir, DiskTierBytes: o.cacheDiskMB << 20,
		PrefetchDepth: o.prefetch, PrefetchInflight: o.prefetchInflight,
		Metrics: core.NewEngineMetrics(reg), Tracer: rec,
	})
	if err != nil {
		return err
	}
	defer node.Close()
	srv, err := federation.Serve(node, o.addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("archive %q serving %d objects on %s (alpha=%.2f, shards=%d, admission=%v)\n",
		o.archive, cat.Total(), srv.Addr(), o.alpha, o.shards, serving != nil)

	var httpSrv *http.Server
	if o.httpAddr != "" {
		portal := federation.NewPortal()
		portal.Register(o.archive, federation.InProc{Node: node})
		for name, addr := range peers {
			portal.Register(name, federation.Dial(addr))
		}
		gw, err := server.NewGateway(server.GatewayConfig{
			Exec:     gatewayExec(portal),
			Server:   node.Serving(),
			Registry: reg,
			Tracer:   rec,
		})
		if err != nil {
			return err
		}
		// The gateway is internet-facing: bound every read/write so a
		// slow or stalled HTTP client cannot pin goroutines without
		// bound, matching the gob transport's stalled-peer hardening.
		httpSrv = &http.Server{
			Addr:              o.httpAddr,
			Handler:           gw,
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      10 * time.Minute, // long-running queries stream their rows
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "liferaftd: http: %v\n", err)
			}
		}()
		fmt.Printf("HTTP gateway on %s (/v1/query, /v1/stats, /metrics, /healthz)\n", o.httpAddr)
	}

	var dbgSrv *http.Server
	if o.debugAddr != "" {
		mux := http.NewServeMux()
		th := rec.Handler()
		mux.Handle("/debug/traces", th)
		mux.Handle("/debug/traces/", th)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbgSrv = &http.Server{
			Addr: o.debugAddr, Handler: mux,
			// Profiles stream for as long as asked (?seconds=N); only
			// bound the header read.
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "liferaftd: debug: %v\n", err)
			}
		}()
		fmt.Printf("debug server on %s (/debug/traces, /debug/pprof)\n", o.debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if httpSrv != nil {
		httpSrv.Shutdown(context.Background())
	}
	if dbgSrv != nil {
		dbgSrv.Shutdown(context.Background())
	}
	return nil
}

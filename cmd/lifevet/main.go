// Command lifevet runs the project-invariant static-analysis suite
// (internal/lifevet) over the module: virtual-clock discipline,
// zero-alloc service loop, nil-guarded observability, bounded metric
// cardinality, fd hygiene, and lock discipline. It exits non-zero when
// any diagnostic survives suppression, so CI can gate on it.
//
// Usage:
//
//	lifevet [-json findings.json] [-vet] [-gofmt] [packages...]
//
// With no package patterns it analyzes ./... . The -vet and -gofmt
// flags fold the stock toolchain hygiene checks into the same gate, so
// one CI step owns "static analysis is clean".
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"liferaft/internal/lifevet"
)

func main() {
	jsonPath := flag.String("json", "", "write diagnostics as a JSON array to this file (empty array when clean)")
	withVet := flag.Bool("vet", false, "also run `go vet` on the analyzed packages and fail on any report")
	withGofmt := flag.Bool("gofmt", false, "also assert `gofmt -l .` reports no files")
	listChecks := flag.Bool("checks", false, "list registered analyzers and exit")
	flag.Parse()

	if *listChecks {
		for _, a := range lifevet.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false

	mod, err := lifevet.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lifevet: %v\n", err)
		os.Exit(2)
	}
	res := lifevet.Run(mod, lifevet.Analyzers())
	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	if *jsonPath != "" {
		diags := res.Diagnostics
		if diags == nil {
			diags = []lifevet.Diagnostic{}
		}
		buf, err := json.MarshalIndent(diags, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lifevet: writing %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "lifevet: %d finding(s), %d suppressed by directives\n", len(res.Diagnostics), res.Suppressed)
		failed = true
	}

	if *withVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "go vet:\n%s", out.String())
			failed = true
		}
	}
	if *withGofmt {
		cmd := exec.Command("gofmt", "-l", ".")
		out, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gofmt -l: %v\n", err)
			failed = true
		} else if files := strings.TrimSpace(string(out)); files != "" {
			fmt.Fprintf(os.Stderr, "gofmt -l reports unformatted files:\n%s\n", files)
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

// Command lifevet runs the project-invariant static-analysis suite
// (internal/lifevet) over the module: virtual-clock discipline,
// zero-alloc service loop, nil-guarded observability, bounded metric
// cardinality, fd hygiene, and lock discipline. It exits non-zero when
// any diagnostic survives suppression, so CI can gate on it.
//
// Usage:
//
//	lifevet [-json findings.json] [-baseline lifevet-baseline.json] [-vet] [-gofmt] [packages...]
//
// With no package patterns it analyzes ./... . The -vet and -gofmt
// flags fold the stock toolchain hygiene checks into the same gate, so
// one CI step owns "static analysis is clean".
//
// The findings baseline is the ratchet: -baseline names a JSON file of
// accepted (check, file, message) classes that pass without inline
// directives; when the flag is not given, lifevet-baseline.json next to
// the module root is used automatically if present. New findings fail
// the run, and baseline entries that no longer match anything fail as
// stale-baseline — the accepted set can only shrink. -update-baseline
// rewrites the baseline file from the current findings (use it when
// deliberately accepting a class, then justify the diff in review).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"liferaft/internal/lifevet"
)

func main() {
	jsonPath := flag.String("json", "", "write diagnostics as a JSON array to this file (empty array when clean)")
	baselinePath := flag.String("baseline", "", "findings baseline file (default: lifevet-baseline.json if present)")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the baseline file from the current findings and exit")
	withVet := flag.Bool("vet", false, "also run `go vet` on the analyzed packages and fail on any report")
	withGofmt := flag.Bool("gofmt", false, "also assert `gofmt -l .` reports no files")
	listChecks := flag.Bool("checks", false, "list registered analyzers and exit")
	flag.Parse()

	if *listChecks {
		for _, a := range lifevet.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s\n", lifevet.StaleDirectiveCheck, "meta: //lifevet:allow directives that suppress nothing fail the run")
		fmt.Printf("%-16s %s\n", lifevet.StaleBaselineCheck, "meta: baseline entries that match no finding fail the run")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false

	mod, err := lifevet.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lifevet: %v\n", err)
		os.Exit(2)
	}
	res := lifevet.Run(mod, lifevet.Analyzers())

	const defaultBaseline = "lifevet-baseline.json"
	if *updateBaseline {
		path := *baselinePath
		if path == "" {
			path = defaultBaseline
		}
		b := lifevet.BaselineFrom(res, ".")
		if err := lifevet.WriteBaseline(path, b); err != nil {
			fmt.Fprintf(os.Stderr, "lifevet: writing baseline %s: %v\n", path, err)
			os.Exit(2)
		}
		fmt.Printf("lifevet: wrote %d accepted finding class(es) to %s\n", len(b.Findings), path)
		return
	}
	switch {
	case *baselinePath != "":
		// An explicitly named baseline must exist: a typo'd path silently
		// running without the ratchet would defeat it.
		b, err := lifevet.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lifevet: %v\n", err)
			os.Exit(2)
		}
		lifevet.ApplyBaseline(&res, b, ".")
	default:
		if b, err := lifevet.LoadBaseline(defaultBaseline); err == nil {
			lifevet.ApplyBaseline(&res, b, ".")
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "lifevet: %v\n", err)
			os.Exit(2)
		}
	}

	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	if *jsonPath != "" {
		diags := res.Diagnostics
		if diags == nil {
			diags = []lifevet.Diagnostic{}
		}
		buf, err := json.MarshalIndent(diags, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lifevet: writing %s: %v\n", *jsonPath, err)
			os.Exit(2)
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "lifevet: %d finding(s), %d suppressed by directives, %d baselined\n", len(res.Diagnostics), res.Suppressed, res.Baselined)
		failed = true
	}

	if *withVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "go vet:\n%s", out.String())
			failed = true
		}
	}
	if *withGofmt {
		cmd := exec.Command("gofmt", "-l", ".")
		out, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gofmt -l: %v\n", err)
			failed = true
		} else if files := strings.TrimSpace(string(out)); files != "" {
			fmt.Fprintf(os.Stderr, "gofmt -l reports unformatted files:\n%s\n", files)
			failed = true
		}
	}

	if failed {
		os.Exit(1)
	}
}

// Command docdrift is the CI gate that keeps docs/OPERATIONS.md — the
// operator's manual — in lockstep with the code it documents. It
// cross-checks two inventories against the manual:
//
//   - every command-line flag registered in cmd/*/main.go must appear
//     as `-name` in the manual;
//   - every metric family name (a double-quoted "liferaft_*" literal in
//     non-test Go source, i.e. a registration site) must appear
//     verbatim;
//   - every HTTP endpoint path registered on a mux in non-test Go
//     source must appear verbatim, or be covered by a documented
//     ancestor path (documenting /debug/pprof covers
//     /debug/pprof/cmdline and friends).
//
// It also keeps docs/ANALYZERS.md in lockstep with the static-analysis
// suite: every analyzer lifevet registers (plus the stale-directive and
// stale-baseline meta-checks) must have a `## `name“ section there, so
// adding an analyzer without documenting its invariant and suppression
// story breaks the build.
//
// Any undocumented flag or metric fails the run with a list of the
// offenders and where they were registered, so adding a flag or a
// metric without documenting it breaks the build rather than silently
// aging the manual.
//
// Usage (from the repository root, as CI runs it):
//
//	go run ./cmd/docdrift
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"liferaft/internal/lifevet"
)

const (
	manualPath    = "docs/OPERATIONS.md"
	analyzersPath = "docs/ANALYZERS.md"
)

// flagRe matches a flag registration and captures the flag name: the
// first string literal on the line of flag.String("name", ...) or
// flag.StringVar(&target, "name", ...). Same-line only, so calls
// without a literal (flag.Parse) cannot swallow a string from a later
// line.
var flagRe = regexp.MustCompile(`flag\.\w+\([^"\n]*"([^"\n]+)"`)

// metricRe matches a double-quoted metric family name. Registration
// sites quote the full name; scrape assertions in tests and harnesses
// use backquoted series strings and are deliberately not matched.
var metricRe = regexp.MustCompile(`"(liferaft_[a-z0-9_]+)"`)

// endpointRe matches an HTTP route registration — mux.Handle("/path",
// ...) or mux.HandleFunc("/path", ...) — and captures the path.
var endpointRe = regexp.MustCompile(`\.Handle(?:Func)?\(\s*"(/[^"
]+)"`)

// site records where an identifier was found, for the failure message.
type site struct{ file, name string }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "docdrift:", err)
		os.Exit(1)
	}
}

func run() error {
	manual, err := os.ReadFile(manualPath)
	if err != nil {
		return fmt.Errorf("reading the manual: %w (run from the repository root)", err)
	}
	doc := string(manual)

	flags, err := collect("cmd", func(path string) bool {
		// Skip this tool's own source: its regex literals would match.
		return filepath.Base(path) == "main.go" &&
			filepath.Base(filepath.Dir(path)) != "docdrift"
	}, flagRe)
	if err != nil {
		return err
	}
	metrics, err := collectAll([]string{"cmd", "internal"}, func(path string) bool {
		return !strings.HasSuffix(path, "_test.go")
	}, metricRe)
	if err != nil {
		return err
	}
	endpoints, err := collectAll([]string{"cmd", "internal"}, func(path string) bool {
		// Skip this tool's own source: the doc comment's example route
		// would match.
		return !strings.HasSuffix(path, "_test.go") &&
			filepath.Base(filepath.Dir(path)) != "docdrift"
	}, endpointRe)
	if err != nil {
		return err
	}
	if len(flags) == 0 || len(metrics) == 0 || len(endpoints) == 0 {
		return fmt.Errorf("inventory came up empty (flags=%d, metrics=%d, endpoints=%d): the extraction regexes no longer match the source tree",
			len(flags), len(metrics), len(endpoints))
	}

	var missing []string
	for _, f := range flags {
		// Flags are documented backticked with their dash: `-rate-mode`.
		if !strings.Contains(doc, "`-"+f.name+"`") {
			missing = append(missing, fmt.Sprintf("flag -%s (registered in %s) is not documented as `-%s`", f.name, f.file, f.name))
		}
	}
	for _, m := range metrics {
		if !strings.Contains(doc, m.name) {
			missing = append(missing, fmt.Sprintf("metric %s (registered in %s) is not documented", m.name, m.file))
		}
	}
	for _, e := range endpoints {
		name := strings.TrimSuffix(e.name, "/")
		covered := strings.Contains(doc, name)
		for _, a := range endpoints {
			if covered {
				break
			}
			anc := strings.TrimSuffix(a.name, "/")
			if anc != name && strings.HasPrefix(name, anc+"/") && strings.Contains(doc, anc) {
				covered = true
			}
		}
		if !covered {
			missing = append(missing, fmt.Sprintf("endpoint %s (registered in %s) is not documented", e.name, e.file))
		}
	}

	// Analyzer coverage: the registry in internal/lifevet is the ground
	// truth (imported directly, no regex), and every entry — plus the
	// stale-directive meta-check — needs its own section heading.
	analyzersDoc, err := os.ReadFile(analyzersPath)
	if err != nil {
		return fmt.Errorf("reading the analyzer manual: %w (run from the repository root)", err)
	}
	checks := []string{lifevet.StaleDirectiveCheck, lifevet.StaleBaselineCheck}
	for _, a := range lifevet.Analyzers() {
		checks = append(checks, a.Name)
	}
	for _, name := range checks {
		if !strings.Contains(string(analyzersDoc), "## `"+name+"`") {
			missing = append(missing, fmt.Sprintf("analyzer %s (registered in internal/lifevet) has no \"## `%s`\" section in %s", name, name, analyzersPath))
		}
	}

	if len(missing) > 0 {
		sort.Strings(missing)
		for _, line := range missing {
			fmt.Fprintln(os.Stderr, "docdrift:", line)
		}
		return fmt.Errorf("%d undocumented name(s) — add them to %s", len(missing), manualPath)
	}
	fmt.Printf("docdrift: %s covers all %d flags, %d metric families, %d endpoints; %s covers all %d analyzers\n",
		manualPath, len(flags), len(metrics), len(endpoints), analyzersPath, len(checks))
	return nil
}

// collect walks one root for files accepted by keep and returns every
// first-group match of re, deduplicated by name.
func collect(root string, keep func(string) bool, re *regexp.Regexp) ([]site, error) {
	return collectAll([]string{root}, keep, re)
}

func collectAll(roots []string, keep func(string) bool, re *regexp.Regexp) ([]site, error) {
	seen := map[string]string{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || !keep(path) {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range re.FindAllStringSubmatch(string(src), -1) {
				if _, dup := seen[m[1]]; !dup {
					seen[m[1]] = path
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("walking %s: %w", root, err)
		}
	}
	out := make([]site, 0, len(seen))
	for name, file := range seen {
		out = append(out, site{file: file, name: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

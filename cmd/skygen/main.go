// Command skygen generates and inspects synthetic SkyQuery workload
// traces: the query streams the experiments replay (paper §5.1). With
// -stats it prints the trace's workload characterization — the statistics
// behind Figures 5 and 6.
//
// Usage:
//
//	skygen [-n 2000] [-seed 42] [-stats] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"liferaft/internal/exper"
	"liferaft/internal/geom"
	"liferaft/internal/workload"
)

func main() {
	n := flag.Int("n", 2000, "number of queries")
	seed := flag.Int64("seed", 42, "trace seed")
	stats := flag.Bool("stats", false, "print Figure 5/6 workload statistics (builds catalogs)")
	asJSON := flag.Bool("json", false, "emit the trace as JSON lines")
	flag.Parse()

	if err := run(*n, *seed, *stats, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "skygen: %v\n", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, stats, asJSON bool) error {
	cfg := workload.DefaultTraceConfig(seed)
	cfg.NumQueries = n
	trace, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, q := range trace.Queries {
			ra, dec := geom.ToRaDec(q.Center)
			row := map[string]any{
				"id": q.ID, "ra": ra, "dec": dec,
				"radius_deg":   geom.Degrees(q.RadiusRad),
				"match_arcsec": geom.RadToArcsec(q.MatchRadiusRad),
				"selectivity":  q.Selectivity,
				"hot":          q.Hot,
				"archives":     q.Archives,
			}
			if q.MagLo != 0 || q.MagHi != 0 {
				row["mag_lo"], row["mag_hi"] = q.MagLo, q.MagHi
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Printf("trace: %d queries, %d hotspots, seed %d\n", len(trace.Queries), len(trace.Hotspots), seed)
	hot := 0
	for _, q := range trace.Queries {
		if q.Hot {
			hot++
		}
	}
	fmt.Printf("hot-region queries: %d (%.0f%%)\n", hot, 100*float64(hot)/float64(len(trace.Queries)))
	for i, q := range trace.Queries[:min(5, len(trace.Queries))] {
		fmt.Printf("  %d: %v\n", i, q)
	}
	if !stats {
		fmt.Println("(run with -stats for the Figure 5/6 workload characterization)")
		return nil
	}
	scale := exper.CI()
	scale.NumQueries = n
	scale.Seed = seed
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	exper.Fig5(env).Fprint(os.Stdout)
	exper.Fig6(env).Fprint(os.Stdout)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

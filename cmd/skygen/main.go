// Command skygen generates and inspects synthetic SkyQuery workload
// traces: the query streams the experiments replay (paper §5.1). With
// -stats it prints the trace's workload characterization — the statistics
// behind Figures 5 and 6. With -write-segments it builds the on-disk
// segment store (internal/segment) a file-backed engine serves real I/O
// from.
//
// Usage:
//
//	skygen [-n 2000] [-seed 42] [-stats] [-json]
//	skygen -write-segments DIR [-objects 120000] [-genlevel 4] [-bucket 400] [-object-bytes 4096] [-seed 42]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/exper"
	"liferaft/internal/geom"
	"liferaft/internal/segment"
	"liferaft/internal/workload"
)

func main() {
	n := flag.Int("n", 2000, "number of queries")
	seed := flag.Int64("seed", 42, "trace seed (and catalog seed for -write-segments)")
	stats := flag.Bool("stats", false, "print Figure 5/6 workload statistics (builds catalogs)")
	asJSON := flag.Bool("json", false, "emit the trace as JSON lines")
	segDir := flag.String("write-segments", "", "build a segment store for a file-backed engine under this directory and exit")
	objects := flag.Int("objects", 120_000, "catalog size for -write-segments")
	genLevel := flag.Int("genlevel", 4, "catalog materialization level for -write-segments")
	perBucket := flag.Int("bucket", 400, "objects per bucket for -write-segments")
	objectBytes := flag.Int64("object-bytes", 0, "on-disk bytes per object for -write-segments (0 = the paper's 4096)")
	flag.Parse()

	if *segDir != "" {
		if err := writeSegments(*segDir, *objects, *seed, *genLevel, *perBucket, *objectBytes); err != nil {
			fmt.Fprintf(os.Stderr, "skygen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*n, *seed, *stats, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "skygen: %v\n", err)
		os.Exit(1)
	}
}

// writeSegments synthesizes the base survey and materializes its
// partition into a segment directory — the build path a file-backed
// liferaftd or skybench -data-dir run reads from. The same flags
// (objects, seed, genlevel, bucket, object-bytes) must be used by the
// engine that opens the store; the manifest records them and open-time
// validation rejects a mismatch.
func writeSegments(dir string, objects int, seed int64, genLevel, perBucket int, objectBytes int64) error {
	cat, err := catalog.New(catalog.Config{
		Name: "sdss", N: objects, Seed: seed, GenLevel: genLevel, CacheTrixels: true,
	})
	if err != nil {
		return err
	}
	part, err := bucket.NewPartition(cat, perBucket, objectBytes)
	if err != nil {
		return err
	}
	// Ensure, not Write: a directory already holding a completed store
	// is opened and validated, never clobbered — rebuilding over a
	// store another process may be serving (or one built with other
	// flags) must be an explicit `rm`, not a flag typo.
	start := time.Now()
	set, st, err := segment.Ensure(dir, part, segment.WriteOptions{})
	if err != nil {
		return err
	}
	set.Close()
	if st.Segments == 0 {
		fmt.Printf("%s already holds a matching segment store; nothing to do\n", dir)
		return nil
	}
	elapsed := time.Since(start)
	fmt.Printf("wrote %d segments under %s: %d buckets, %d objects, %.1f MB in %v (%.1f MB/s)\n",
		st.Segments, dir, st.Buckets, st.Objects, float64(st.Bytes)/1e6,
		elapsed.Round(time.Millisecond), float64(st.Bytes)/1e6/elapsed.Seconds())
	return nil
}

func run(n int, seed int64, stats, asJSON bool) error {
	cfg := workload.DefaultTraceConfig(seed)
	cfg.NumQueries = n
	trace, err := workload.Generate(cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, q := range trace.Queries {
			ra, dec := geom.ToRaDec(q.Center)
			row := map[string]any{
				"id": q.ID, "ra": ra, "dec": dec,
				"radius_deg":   geom.Degrees(q.RadiusRad),
				"match_arcsec": geom.RadToArcsec(q.MatchRadiusRad),
				"selectivity":  q.Selectivity,
				"hot":          q.Hot,
				"archives":     q.Archives,
			}
			if q.MagLo != 0 || q.MagHi != 0 {
				row["mag_lo"], row["mag_hi"] = q.MagLo, q.MagHi
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Printf("trace: %d queries, %d hotspots, seed %d\n", len(trace.Queries), len(trace.Hotspots), seed)
	hot := 0
	for _, q := range trace.Queries {
		if q.Hot {
			hot++
		}
	}
	fmt.Printf("hot-region queries: %d (%.0f%%)\n", hot, 100*float64(hot)/float64(len(trace.Queries)))
	for i, q := range trace.Queries[:min(5, len(trace.Queries))] {
		fmt.Printf("  %d: %v\n", i, q)
	}
	if !stats {
		fmt.Println("(run with -stats for the Figure 5/6 workload characterization)")
		return nil
	}
	scale := exper.CI()
	scale.NumQueries = n
	scale.Seed = seed
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	exper.Fig5(env).Fprint(os.Stdout)
	exper.Fig6(env).Fprint(os.Stdout)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/cache/disktier"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/exper"
	"liferaft/internal/geom"
	"liferaft/internal/segment"
	"liferaft/internal/xmatch"
)

// The tiered scenario's store geometry. The working set (every bucket)
// must dwarf the RAM tier (20 buckets) so the qps phases measure the
// disk tier, not the in-RAM cache, and buckets must be large enough
// (8 MiB) that the segment read — alloc + pread + CRC per scan —
// dominates the per-service floor (the modeled 0.13 ms match charge
// sleeps on the real clock, and time.Sleep's practical resolution is
// ~1 ms). Groups are kept at 2 buckets (16 MiB fills) so demand
// promotion has a meaningfully coarse granule to lose against: the
// prefetcher's lead time covers a fill, a demand miss's does not.
const (
	tieredObjects     = 786_432
	tieredSeed        = 42
	tieredGenLevel    = 4
	tieredPerBucket   = 16_384
	tieredObjectBytes = 512
	tieredGroupSize   = 2
	tieredTierBytes   = 768 << 20
	tieredDepth       = 12
	tieredInflight    = 8
	// tieredForceScan pushes the hybrid break-even ratio to ~zero so
	// every service is a sequential scan: the scenario measures bucket
	// read cost, and index probes would let small services dodge it.
	tieredForceScan = 1e-9
	// tieredBatchLoad is the per-bucket workload depth of the hit-rate
	// trace: ~500 objects per bucket keeps each service busy matching
	// (500 x Tm = 65 ms) so background promotion has wall-clock room to
	// land. A 16 MiB group fill takes on the order of a service, so
	// demand promotion — issued only once a groupmate is already being
	// serviced — can never beat the first touch of a group (its hit
	// rate is structurally capped at 1 - groups/buckets = 0.5 here),
	// while the prefetcher's multi-service lead can: the race it is
	// supposed to win.
	tieredBatchLoad = 500
)

// tieredSnapshot is the BENCH_8.json payload: the cold/warm/prefetch
// tiered-cache scenario against the real-I/O segment store, plus the
// zero-alloc and vqps-delta regression gates the CI bench smoke fails
// on.
type tieredSnapshot struct {
	GeneratedBy     string  `json:"generated_by"`
	DataDir         string  `json:"data_dir"`
	Buckets         int     `json:"buckets"`
	Groups          int     `json:"groups"`
	StoreMB         float64 `json:"store_mb"`
	RAMCacheBuckets int     `json:"ram_cache_buckets"`
	// QPSBase is the PR 4 single-tier baseline (best of 3): the untiered
	// file backend paying a full segment read per scan. QPSWarm is the
	// same trace against a warm disk tier with prefetch on (best of 3).
	QPSBase    float64 `json:"qps_base"`
	QPSWarm    float64 `json:"qps_warm"`
	QPSSpeedup float64 `json:"qps_speedup"`
	// HitRateTierOnly/HitRatePrefetch are cold-start fast-tier hit
	// rates on the batch trace: demand promotion alone vs the
	// schedule-driven prefetcher. Lift is their difference.
	HitRateTierOnly float64 `json:"hit_rate_tier_only"`
	HitRatePrefetch float64 `json:"hit_rate_prefetch"`
	HitRateLift     float64 `json:"hit_rate_lift"`
	// Tier-internal counters for the three tiered phases.
	ColdDemandStats   disktier.Stats `json:"cold_demand_tier_stats"`
	ColdPrefetchStats disktier.Stats `json:"cold_prefetch_tier_stats"`
	WarmStats         disktier.Stats `json:"warm_tier_stats"`
	// StepAllocsPerOp re-measures the traced service-loop allocation
	// budget at 10k buckets; the gate is exactly zero.
	StepAllocsPerOp float64 `json:"step_allocs_per_op_10k"`
	// VQPS replays the CI-scale virtual trace with the current engine;
	// VQPSRef is the figure recorded in BENCH_4.json (virtual time, so
	// machine-independent) and VQPSDeltaPct their relative drift — the
	// gate that the tiering code left the simulated schedule untouched.
	VQPS         float64 `json:"vqps"`
	VQPSRef      float64 `json:"vqps_ref_bench4,omitempty"`
	VQPSDeltaPct float64 `json:"vqps_delta_pct"`
}

// runTiered measures the tiered-cache scenario and writes BENCH_8.json
// to path. Phases: (A) untiered baseline qps on a one-object-per-bucket
// scan trace; (B) cold disk tier, demand promotion only, hit rate on
// the batch trace; (C) cold disk tier with the Eq.-2-driven prefetcher,
// hit rate on the same trace; (D) the tier directory C warmed, reopened
// (warm restart), qps on the scan trace. Gates: D >= 2x A, C >= B +
// 0.05, zero allocs/op on the service loop, and virtual throughput
// within 1% of the BENCH_4 figure.
func runTiered(path, dataDir string) error {
	snap := tieredSnapshot{GeneratedBy: "skybench -tiered"}
	cleanup := func() {}
	if dataDir == "" {
		tmp, err := os.MkdirTemp("", "skybench-tiered-")
		if err != nil {
			return err
		}
		dataDir, cleanup = tmp, func() { os.RemoveAll(tmp) }
	}
	defer cleanup()
	segDir := filepath.Join(dataDir, "segments")
	demandDir := filepath.Join(dataDir, "tier-demand")
	prefetchDir := filepath.Join(dataDir, "tier-prefetch")
	// The segment store persists across invocations (segment.Ensure
	// reuses it); the tier directories are the scenario's subject and
	// must start genuinely cold every time.
	if err := os.RemoveAll(demandDir); err != nil {
		return err
	}
	if err := os.RemoveAll(prefetchDir); err != nil {
		return err
	}

	fmt.Printf("synthesizing catalog (%d objects)...\n", tieredObjects)
	local, err := catalog.New(catalog.Config{
		Name: "sdss", N: tieredObjects, Seed: tieredSeed,
		GenLevel: tieredGenLevel, CacheTrixels: true,
	})
	if err != nil {
		return err
	}
	part, err := bucket.NewPartition(local, tieredPerBucket, tieredObjectBytes)
	if err != nil {
		return err
	}
	buildStart := time.Now()
	set, wst, err := segment.Ensure(segDir, part, segment.WriteOptions{BucketsPerSegment: tieredGroupSize})
	if err != nil {
		return err
	}
	set.Close() // each phase reopens its own set
	if wst.Segments > 0 {
		fmt.Printf("built segment store: %d segments, %.1f MB in %v\n",
			wst.Segments, float64(wst.Bytes)/1e6, time.Since(buildStart).Round(time.Millisecond))
	}
	nb := part.NumBuckets()
	snap.DataDir = dataDir
	snap.Buckets = nb
	snap.Groups = (nb + tieredGroupSize - 1) / tieredGroupSize
	snap.StoreMB = float64(int64(local.Total())*int64(tieredObjectBytes)) / 1e6

	// Two traces over the same store. The scan trace aims one object at
	// (roughly) each bucket: per service the match charge is noise next
	// to the 8 MiB segment read, so qps measures the storage path. The
	// batch trace queues tieredBatchLoad objects per bucket in one job:
	// services spend ~65 ms matching each, so cold-start hit rate
	// measures whether promotion landed ahead of the scheduler.
	total := int64(local.Total())
	radius := geom.ArcsecToRad(1.0)
	scanJobs := make([]core.Job, 0, nb)
	for b := 0; b < nb; b++ {
		ord := (int64(b)*2 + 1) * total / int64(2*nb) // mid-bucket ordinal
		id := uint64(b + 1)
		scanJobs = append(scanJobs, core.Job{
			ID:      id,
			Objects: []xmatch.WorkloadObject{xmatch.NewWorkloadObject(id, local.Objects(ord, ord+1)[0], radius)},
		})
	}
	nBatch := nb * tieredBatchLoad
	batchObjs := make([]xmatch.WorkloadObject, 0, nBatch)
	for k := 0; k < nBatch; k++ {
		ord := int64(k) * total / int64(nBatch)
		batchObjs = append(batchObjs, xmatch.NewWorkloadObject(1, local.Objects(ord, ord+1)[0], radius))
	}
	batchJobs := []core.Job{{ID: 1, Objects: batchObjs}}

	openUntiered := func() (core.Config, error) {
		s, err := segment.OpenSet(segDir)
		if err != nil {
			return core.Config{}, err
		}
		cfg, err := core.NewFileBackedFrom(part, 0.5, false, s)
		if err != nil {
			return core.Config{}, err
		}
		cfg.HybridThreshold = tieredForceScan
		return cfg, nil
	}
	// runTier replays jobs through a tiered engine over tierDir and
	// returns the tier's counters for the run (fresh per open) and qps.
	runTier := func(tierDir string, depth int, jobs []core.Job) (disktier.Stats, float64, error) {
		s, err := segment.OpenSet(segDir)
		if err != nil {
			return disktier.Stats{}, 0, err
		}
		cfg, err := core.NewFileBackedTieredFrom(part, 0.5, false, s, core.TierOptions{
			Dir: tierDir, CapacityBytes: tieredTierBytes,
			PrefetchDepth: depth, PrefetchInflight: tieredInflight,
		})
		if err != nil {
			return disktier.Stats{}, 0, err
		}
		cfg.HybridThreshold = tieredForceScan
		tb := cfg.Store.Backend().(*segment.TieredBackend)
		offsets := make([]time.Duration, len(jobs))
		_, stats, err := core.Run(cfg, jobs, offsets)
		if err != nil {
			cfg.Store.Close()
			return disktier.Stats{}, 0, err
		}
		tb.Tier().WaitIdle()
		ts := tb.Tier().Stats()
		if err := cfg.Store.Close(); err != nil {
			return disktier.Stats{}, 0, err
		}
		return ts, stats.Throughput(), nil
	}
	hitRate := func(s disktier.Stats) float64 {
		if s.Hits+s.Misses == 0 {
			return 0
		}
		return float64(s.Hits) / float64(s.Hits+s.Misses)
	}

	// runPass replays jobs once through an already-built engine (a fresh
	// scheduler per pass, the store and its backend shared), returning
	// qps.
	runPass := func(cfg core.Config, jobs []core.Job) (float64, error) {
		offsets := make([]time.Duration, len(jobs))
		_, stats, err := core.Run(cfg, jobs, offsets)
		if err != nil {
			return 0, err
		}
		return stats.Throughput(), nil
	}

	// Phase A: the single-tier baseline at steady state — one warmup
	// pass (OS page cache), then best of 3. The untiered backend repays
	// alloc + pread + CRC on every scan no matter how warm it is; that
	// recurring per-read cost is exactly what the tier amortizes.
	{
		cfg, err := openUntiered()
		if err != nil {
			return err
		}
		snap.RAMCacheBuckets = cfg.CacheBuckets
		if _, err := runPass(cfg, scanJobs); err != nil {
			cfg.Store.Close()
			return err
		}
		for i := 0; i < 3; i++ {
			qps, err := runPass(cfg, scanJobs)
			if err != nil {
				cfg.Store.Close()
				return err
			}
			if qps > snap.QPSBase {
				snap.QPSBase = qps
			}
		}
		if err := cfg.Store.Close(); err != nil {
			return err
		}
	}
	if nb <= snap.RAMCacheBuckets {
		return fmt.Errorf("tiered scenario degenerate: %d buckets fit the %d-bucket RAM tier", nb, snap.RAMCacheBuckets)
	}
	fmt.Printf("baseline (untiered, %d buckets > %d-bucket RAM tier): %.1f qps\n",
		nb, snap.RAMCacheBuckets, snap.QPSBase)

	// Phase B: cold tier, demand promotion only.
	dStats, _, err := runTier(demandDir, 0, batchJobs)
	if err != nil {
		return err
	}
	snap.ColdDemandStats = dStats
	snap.HitRateTierOnly = hitRate(dStats)
	fmt.Printf("cold tier, demand only: hit rate %.3f (%d hits / %d misses, %d fills)\n",
		snap.HitRateTierOnly, dStats.Hits, dStats.Misses, dStats.Fills)

	// Phase C: cold tier with the schedule-driven prefetcher.
	pStats, _, err := runTier(prefetchDir, tieredDepth, batchJobs)
	if err != nil {
		return err
	}
	snap.ColdPrefetchStats = pStats
	snap.HitRatePrefetch = hitRate(pStats)
	snap.HitRateLift = snap.HitRatePrefetch - snap.HitRateTierOnly
	fmt.Printf("cold tier, prefetch depth %d: hit rate %.3f (%d prefetches issued, %d scored, %d wasted)\n",
		tieredDepth, snap.HitRatePrefetch, pStats.PrefetchIssued, pStats.PrefetchHits, pStats.PrefetchWasted)

	// Phase D: warm restart of C's tier directory, steady state — the
	// warmup pass remaps and checksum-revalidates every restored entry
	// (the once-per-restart cost), then best of 3 measures hits served
	// from the resident mappings.
	{
		s, err := segment.OpenSet(segDir)
		if err != nil {
			return err
		}
		cfg, err := core.NewFileBackedTieredFrom(part, 0.5, false, s, core.TierOptions{
			Dir: prefetchDir, CapacityBytes: tieredTierBytes,
			PrefetchDepth: tieredDepth, PrefetchInflight: tieredInflight,
		})
		if err != nil {
			return err
		}
		cfg.HybridThreshold = tieredForceScan
		tb := cfg.Store.Backend().(*segment.TieredBackend)
		if _, err := runPass(cfg, scanJobs); err != nil {
			cfg.Store.Close()
			return err
		}
		for i := 0; i < 3; i++ {
			qps, err := runPass(cfg, scanJobs)
			if err != nil {
				cfg.Store.Close()
				return err
			}
			if qps > snap.QPSWarm {
				snap.QPSWarm = qps
			}
		}
		tb.Tier().WaitIdle()
		snap.WarmStats = tb.Tier().Stats()
		if err := cfg.Store.Close(); err != nil {
			return err
		}
	}
	snap.QPSSpeedup = snap.QPSWarm / snap.QPSBase
	fmt.Printf("warm tier + prefetch: %.1f qps (%.2fx baseline, warm hit rate %.3f)\n",
		snap.QPSWarm, snap.QPSSpeedup, hitRate(snap.WarmStats))

	// Regression gates: the traced service loop still allocates nothing,
	// and the virtual schedule is untouched by the tiering code.
	rep, err := core.PerfProbe(10_000)
	if err != nil {
		return err
	}
	snap.StepAllocsPerOp = rep.StepAllocsPerOp
	scale, err := exper.ScaleByName("ci")
	if err != nil {
		return err
	}
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	vcfg, _ := core.NewVirtual(env.Part, 0.5, false)
	_, vstats, err := core.Run(vcfg, env.Jobs, env.SaturatedOffsets())
	if err != nil {
		return err
	}
	snap.VQPS = vstats.Throughput()
	if raw, err := os.ReadFile("BENCH_4.json"); err == nil {
		var ref struct {
			VQPS float64 `json:"vqps"`
		}
		if json.Unmarshal(raw, &ref) == nil && ref.VQPS > 0 {
			snap.VQPSRef = ref.VQPS
			snap.VQPSDeltaPct = 100 * (snap.VQPS - ref.VQPS) / ref.VQPS
		}
	}
	fmt.Printf("service loop: %.2f allocs/op; vqps %.2f (BENCH_4 ref %.2f, delta %+.2f%%)\n",
		snap.StepAllocsPerOp, snap.VQPS, snap.VQPSRef, snap.VQPSDeltaPct)

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)

	var failed []string
	if snap.QPSSpeedup < 2 {
		failed = append(failed, fmt.Sprintf("warm qps speedup %.2fx below the 2x bar (%.1f vs %.1f baseline)",
			snap.QPSSpeedup, snap.QPSWarm, snap.QPSBase))
	}
	if snap.HitRateLift < 0.05 {
		failed = append(failed, fmt.Sprintf("prefetch hit-rate lift %.3f below the 0.05 bar (%.3f vs %.3f demand-only)",
			snap.HitRateLift, snap.HitRatePrefetch, snap.HitRateTierOnly))
	}
	// The committed trajectory's noise floor is 1/512 (one stray alloc
	// across the whole AllocsPerRun batch); anything at or above 0.01
	// means the loop itself allocates again.
	if snap.StepAllocsPerOp >= 0.01 {
		failed = append(failed, fmt.Sprintf("service loop allocates %.4f allocs/op, want ~0", snap.StepAllocsPerOp))
	}
	if snap.VQPSRef > 0 && (snap.VQPSDeltaPct > 1 || snap.VQPSDeltaPct < -1) {
		failed = append(failed, fmt.Sprintf("vqps drifted %+.2f%% from the BENCH_4 figure (budget 1%%)", snap.VQPSDeltaPct))
	}
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintf(os.Stderr, "GATE FAILED: %s\n", f)
		}
		return fmt.Errorf("%d tiered-cache perf gate(s) failed", len(failed))
	}
	return nil
}

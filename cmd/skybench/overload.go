// Overload scenario harness: skybench -overload BENCH_5.json drives the
// serving layer through four shapes of trouble — a flash crowd (in both
// adaptive and static rate modes), a diurnal ramp, a slow-loris tenant,
// and a 10,000-tenant churn — against a 4-shard virtual-clock engine, and
// writes a per-scenario SLO verdict for the trajectory file.
//
// The acceptance bar mirrors the serving layer's load test: a steady
// closed-loop tenant (one query outstanding, small selectivities) must
// keep its p99 response time within 2x of its solo run no matter what the
// other tenants do. The flash-crowd pair is the headline: with
// -rate-mode=adaptive the AIMD controller cuts the flooding tenant and
// the steady tenant stays within bound; with -rate-mode=static (no
// configured rates — the operator never anticipated this tenant) the same
// flood breaches it.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/geom"
	"liferaft/internal/metric"
	"liferaft/internal/server"
	"liferaft/internal/workload"
	"liferaft/internal/xmatch"
)

// overloadReport is the BENCH_5.json payload.
type overloadReport struct {
	GeneratedBy string `json:"generated_by"`
	// SoloP99Sec is the steady tenant's p99 (virtual seconds) running
	// alone through the serving layer; every scenario bound is relative
	// to it. SLOP99Sec = 2x solo is both the AIMD controller's target and
	// the verdict line.
	SoloP99Sec float64            `json:"solo_p99_sec"`
	SLOP99Sec  float64            `json:"slo_p99_sec"`
	Scenarios  []overloadScenario `json:"scenarios"`
	Pass       bool               `json:"pass"`
}

// overloadScenario is one scenario's measured outcome and verdict.
type overloadScenario struct {
	Name      string `json:"name"`
	RateMode  string `json:"rate_mode"`
	Criterion string `json:"criterion"`
	// SteadyP99Sec / RatioVsSolo measure the victim tenant; Pass applies
	// Criterion to them.
	SteadyP99Sec float64 `json:"steady_p99_sec,omitempty"`
	RatioVsSolo  float64 `json:"ratio_vs_solo,omitempty"`
	Pass         bool    `json:"pass"`
	Detail       string  `json:"detail,omitempty"`

	// Offered-load accounting for the antagonist tenant(s).
	Admitted int64 `json:"admitted,omitempty"`
	Rejected int64 `json:"rejected,omitempty"`
	// AIMD controller activity during the scenario.
	RateCuts   float64 `json:"aimd_rate_cuts,omitempty"`
	RateRaises float64 `json:"aimd_rate_raises,omitempty"`
	// Churn-scenario registry accounting.
	TenantsServed   int `json:"tenants_served,omitempty"`
	AdmissionSeries int `json:"admission_series,omitempty"`
	ScrapeBytes     int `json:"scrape_bytes,omitempty"`
}

// overloadFixture is the shared workload: one archive partition plus the
// per-tenant job templates (cloned under fresh IDs at submission).
type overloadFixture struct {
	part   *bucket.Partition
	steady []core.Job // small selectivities: the closed-loop victim
	flood  []core.Job // large: the flash crowd
	city   []core.Job // medium: the diurnal ramp
	loris  []core.Job // near-total scans: the slow loris
	nextID atomic.Uint64
}

func newOverloadFixture() (*overloadFixture, error) {
	local, err := catalog.New(catalog.Config{
		Name: "sdss", N: 12_800, Seed: 21, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		return nil, err
	}
	remote, err := catalog.NewDerived(local, catalog.DerivedConfig{
		Name: "twomass", Seed: 22, Fraction: 0.8,
		JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		return nil, err
	}
	part, err := bucket.NewPartition(local, 400, 0) // 32 buckets
	if err != nil {
		return nil, err
	}
	mkJobs := func(seed int64, n int, minSel, maxSel float64) ([]core.Job, error) {
		cfg := workload.DefaultTraceConfig(seed)
		cfg.NumQueries = n
		cfg.MinSelectivity, cfg.MaxSelectivity = minSel, maxSel
		tr, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		jobs := make([]core.Job, 0, n)
		for _, q := range tr.Queries {
			jobs = append(jobs, core.Job{
				Objects: workload.Materialize(q, remote, cfg.Seed),
				Pred:    q.Predicate(),
			})
		}
		return jobs, nil
	}
	f := &overloadFixture{part: part}
	if f.steady, err = mkJobs(31, 40, 0.1, 0.3); err != nil {
		return nil, err
	}
	if f.flood, err = mkJobs(37, 300, 0.5, 1.0); err != nil {
		return nil, err
	}
	if f.city, err = mkJobs(41, 120, 0.3, 0.6); err != nil {
		return nil, err
	}
	if f.loris, err = mkJobs(43, 40, 0.9, 1.0); err != nil {
		return nil, err
	}
	return f, nil
}

// withID clones a template job under a fresh unique query ID (engines
// reject duplicate IDs); the workload objects carry the ID too.
func (f *overloadFixture) withID(j core.Job) core.Job {
	j.ID = f.nextID.Add(1)
	objs := make([]xmatch.WorkloadObject, len(j.Objects))
	for i, wo := range j.Objects {
		wo.QueryID = j.ID
		objs[i] = wo
	}
	j.Objects = objs
	return j
}

// newEngine builds a fresh 4-shard virtual-clock engine instrumented into
// reg (a fresh engine per scenario: no leaked backlog between runs).
func (f *overloadFixture) newEngine(reg *metric.Registry) (*core.Live, error) {
	cfg, _ := core.NewVirtual(f.part, 0.5, false)
	cfg.Shards = 4
	// A small bucket cache (2 of each shard's 8 buckets) puts the engine
	// in the paper's disk-bound regime — the archive far exceeds RAM — so
	// overload manifests as longer disk rotations instead of being
	// absorbed by a cache that holds most of the working set.
	cfg.CacheBuckets = 2
	if reg != nil {
		cfg.Metrics = core.NewEngineMetrics(reg)
	}
	return core.NewLive(cfg)
}

// runSteadyLoop drives the victim tenant: one query outstanding at a
// time, laps passes over the steady list.
func (f *overloadFixture) runSteadyLoop(s *server.Server, laps int) error {
	for l := 0; l < laps; l++ {
		for _, j := range f.steady {
			ch, err := s.Submit(context.Background(), "steady", f.withID(j))
			if err != nil {
				return fmt.Errorf("steady submit: %w", err)
			}
			if _, ok := <-ch; !ok {
				return fmt.Errorf("steady query dropped")
			}
		}
	}
	return nil
}

// scrapeValue renders reg and returns the value of the first sample whose
// series name (with labels) starts with prefix, plus how many samples of
// that family exist. Parsing our own exposition output keeps the harness
// honest about what an operator's Prometheus would actually see.
func scrapeValue(reg *metric.Registry, prefix string) (val float64, samples int) {
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		return 0, 0
	}
	family := prefix
	if i := strings.IndexByte(prefix, '{'); i >= 0 {
		family = prefix[:i]
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, family+"{") || strings.HasPrefix(line, family+" ") {
			samples++
		}
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		// Histogram bucket lines may carry an OpenMetrics exemplar
		// ("... # {trace_id=...} v"); the sample value precedes it.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		fieldsAt := strings.LastIndexByte(line, ' ')
		if fieldsAt < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[fieldsAt+1:], 64); err == nil && val == 0 {
			val = v
		}
	}
	return val, samples
}

// flashCrowd floods the engine with large queries from an unconfigured
// tenant while the steady tenant runs its closed loop. mode decides
// whether the AIMD controller is allowed to fight back.
func (f *overloadFixture) flashCrowd(mode server.RateMode, slo time.Duration, soloP99 float64) (overloadScenario, error) {
	sc := overloadScenario{Name: "flash_crowd_" + string(mode), RateMode: string(mode)}
	reg := metric.NewRegistry()
	eng, err := f.newEngine(reg)
	if err != nil {
		return sc, err
	}
	defer eng.Close()
	// MaxInFlight 16 on a 4-shard engine: sized to exploit parallelism
	// for well-behaved small queries, which means the dispatch cap alone
	// no longer protects anyone once large scans pour in — exactly the
	// configuration gap the admission controller exists to cover.
	s, err := server.New(eng, server.Config{
		MaxInFlight:     16,
		RateMode:        mode,
		SLOP99:          slo,
		ControlInterval: 100 * time.Millisecond,
		Registry:        reg,
		Tenants: []server.TenantConfig{
			{Name: "steady", Rate: -1}, // unlimited; it self-paces
			// flash is deliberately unconfigured: the tenant nobody
			// provisioned for. Static mode has no answer beyond queue
			// bounds; adaptive mode cuts it.
		},
	})
	if err != nil {
		return sc, err
	}
	defer s.Close()

	// Lap 1 runs clean; the crowd arrives for laps 2-4 and is kept
	// saturating deterministically: before every steady submission its
	// queue is topped up until backpressure pushes back (queue full in
	// static mode; queue full or rate-limited once the controller cuts in
	// adaptive mode). That is the steady state of an open-loop arrival
	// process that always outpaces the engine.
	next := 0
	var admitted, rejected int64
	topUp := func() {
		for {
			if _, err := s.Submit(context.Background(), "flash", f.withID(f.flood[next%len(f.flood)])); err != nil {
				rejected++
				return
			}
			admitted++
			next++
		}
	}
	for l := 0; l < 4; l++ {
		for _, j := range f.steady {
			if l >= 1 {
				topUp()
			}
			ch, err := s.Submit(context.Background(), "steady", f.withID(j))
			if err != nil {
				return sc, fmt.Errorf("steady submit: %w", err)
			}
			if _, ok := <-ch; !ok {
				return sc, fmt.Errorf("steady query dropped")
			}
		}
	}

	sc.SteadyP99Sec = s.TenantSummary("steady").P99
	sc.RatioVsSolo = sc.SteadyP99Sec / soloP99
	sc.Admitted, sc.Rejected = admitted, rejected
	sc.RateCuts, _ = scrapeValue(reg, `liferaft_aimd_rate_cuts_total{tenant="flash"}`)
	sc.RateRaises, _ = scrapeValue(reg, `liferaft_aimd_rate_raises_total{tenant="flash"}`)
	if admitted == 0 || rejected == 0 {
		sc.Detail = fmt.Sprintf("flood admitted=%d rejected=%d: not saturating", admitted, rejected)
		return sc, nil
	}
	if mode == server.RateAdaptive {
		sc.Criterion = "steady p99 <= 2x solo (AIMD absorbs the crowd)"
		sc.Pass = sc.RatioVsSolo <= 2 && sc.RateCuts >= 1
		sc.Detail = fmt.Sprintf("AIMD cut flash %gx, raised %gx", sc.RateCuts, sc.RateRaises)
	} else {
		sc.Criterion = "steady p99 > 2x solo (static mode breaches: the contrast the adaptive default removes)"
		sc.Pass = sc.RatioVsSolo > 2
	}
	return sc, nil
}

// diurnalRamp ramps an open-loop "city" tenant through quiet -> peak ->
// quiet phases across the steady tenant's closed loop: the controller
// must cut at the peak and regrow afterwards.
func (f *overloadFixture) diurnalRamp(slo time.Duration, soloP99 float64) (overloadScenario, error) {
	sc := overloadScenario{
		Name: "diurnal_ramp", RateMode: string(server.RateAdaptive),
		Criterion: "steady p99 <= 2x solo; controller cuts at peak and regrows after",
	}
	reg := metric.NewRegistry()
	eng, err := f.newEngine(reg)
	if err != nil {
		return sc, err
	}
	defer eng.Close()
	s, err := server.New(eng, server.Config{
		MaxInFlight:     16,
		SLOP99:          slo,
		ControlInterval: 100 * time.Millisecond,
		Registry:        reg,
		Tenants:         []server.TenantConfig{{Name: "steady", Rate: -1}},
	})
	if err != nil {
		return sc, err
	}
	defer s.Close()

	// Arrival intensity per steady step, five phases of eight steps —
	// night, morning, midday peak (far over capacity), evening, night —
	// then two more night laps: the peak's backlog takes real (virtual)
	// time to drain, and regrowth can only show up in the quiet windows
	// after it has.
	phases := []int{1, 6, 24, 6, 1}
	next := 0
	step := func(burst int, j core.Job) error {
		for b := 0; b < burst; b++ {
			if _, err := s.Submit(context.Background(), "city", f.withID(f.city[next%len(f.city)])); err != nil {
				sc.Rejected++
			} else {
				sc.Admitted++
			}
			next++
		}
		ch, err := s.Submit(context.Background(), "steady", f.withID(j))
		if err != nil {
			return fmt.Errorf("steady submit: %w", err)
		}
		if _, ok := <-ch; !ok {
			return fmt.Errorf("steady query dropped")
		}
		return nil
	}
	for i, j := range f.steady {
		if err := step(phases[i*len(phases)/len(f.steady)], j); err != nil {
			return sc, err
		}
	}
	for l := 0; l < 2; l++ {
		for _, j := range f.steady {
			if err := step(1, j); err != nil {
				return sc, err
			}
		}
	}

	sc.SteadyP99Sec = s.TenantSummary("steady").P99
	sc.RatioVsSolo = sc.SteadyP99Sec / soloP99
	sc.RateCuts, _ = scrapeValue(reg, `liferaft_aimd_rate_cuts_total{tenant="city"}`)
	sc.RateRaises, _ = scrapeValue(reg, `liferaft_aimd_rate_raises_total{tenant="city"}`)
	sc.Pass = sc.RatioVsSolo <= 2 && sc.RateCuts >= 1 && sc.RateRaises >= 1
	sc.Detail = fmt.Sprintf("city cut %gx at peak, regrown %gx after", sc.RateCuts, sc.RateRaises)
	return sc, nil
}

// slowLoris keeps a handful of near-total-scan queries perpetually
// outstanding — the tenant that is never fast and never absent — while
// the steady tenant runs two laps.
func (f *overloadFixture) slowLoris(slo time.Duration, soloP99 float64) (overloadScenario, error) {
	sc := overloadScenario{
		Name: "slow_loris", RateMode: string(server.RateAdaptive),
		Criterion: "steady p99 <= 2x solo despite capacity-hogging scans",
	}
	reg := metric.NewRegistry()
	eng, err := f.newEngine(reg)
	if err != nil {
		return sc, err
	}
	defer eng.Close()
	s, err := server.New(eng, server.Config{
		MaxInFlight: 4,
		SLOP99:      slo,
		Registry:    reg,
		Tenants:     []server.TenantConfig{{Name: "steady", Rate: -1}},
	})
	if err != nil {
		return sc, err
	}
	defer s.Close()

	// Up to 5 loris queries outstanding: 4 can hold every engine slot
	// with another queued behind them, so only fair queueing plus the
	// controller keep the steady tenant alive.
	const outstanding = 5
	sem := make(chan struct{}, outstanding)
	done := make(chan struct{})
	lorisDone := make(chan struct{})
	var admitted, rejected int64
	var wg sync.WaitGroup
	go func() {
		defer close(lorisDone)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			sem <- struct{}{}
			ch, err := s.Submit(context.Background(), "loris", f.withID(f.loris[i%len(f.loris)]))
			if err != nil {
				<-sem
				rejected++
				time.Sleep(time.Millisecond)
				continue
			}
			admitted++
			wg.Add(1)
			go func(ch <-chan core.Result) {
				defer wg.Done()
				<-ch
				<-sem
			}(ch)
		}
	}()
	err = f.runSteadyLoop(s, 3)
	close(done)
	<-lorisDone
	wg.Wait()
	if err != nil {
		return sc, err
	}

	sc.SteadyP99Sec = s.TenantSummary("steady").P99
	sc.RatioVsSolo = sc.SteadyP99Sec / soloP99
	sc.Admitted, sc.Rejected = admitted, rejected
	sc.RateCuts, _ = scrapeValue(reg, `liferaft_aimd_rate_cuts_total{tenant="loris"}`)
	sc.RateRaises, _ = scrapeValue(reg, `liferaft_aimd_rate_raises_total{tenant="loris"}`)
	sc.Pass = sc.RatioVsSolo <= 2
	sc.Detail = fmt.Sprintf("loris held %d-deep; cut %gx", outstanding, sc.RateCuts)
	return sc, nil
}

// tenantChurn pushes 10,000 distinct tenants (two small queries each)
// through the layer: every query must complete, the scrape must stay
// bounded in series AND in bytes — tenant-labeled families fold the long
// tail into the "_other" overflow series instead of growing per-tenant
// forever, and the whole exposition stays under a fixed byte budget no
// matter how many tenants have come and gone.
func (f *overloadFixture) tenantChurn() (overloadScenario, error) {
	const tenants, perTenant, workers = 10_000, 2, 16
	// scrapeBudgetBytes bounds the full /metrics rendering after the
	// churn: 2 MiB is roomy for 256 live tenant series plus engine
	// families, and far under what 10k unfolded tenants would produce.
	const scrapeBudgetBytes = 2 << 20
	sc := overloadScenario{
		Name: "tenant_churn", RateMode: string(server.RateAdaptive),
		Criterion: fmt.Sprintf("%d tenants x %d queries all complete; admission series and scrape bytes stay capped", tenants, perTenant),
	}
	reg := metric.NewRegistry()
	eng, err := f.newEngine(reg)
	if err != nil {
		return sc, err
	}
	defer eng.Close()
	s, err := server.New(eng, server.Config{
		MaxInFlight: 4,
		MaxTenants:  tenants + 8,
		// Small per-tenant response reservoirs: 10k tenants at the 1024
		// default would pin ~80 MB just for summaries.
		ReservoirSize: 32,
		Registry:      reg,
	})
	if err != nil {
		return sc, err
	}
	defer s.Close()

	var wg sync.WaitGroup
	var completed, failed atomic.Int64
	ids := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range ids {
				name := fmt.Sprintf("survey-%04d", id)
				for q := 0; q < perTenant; q++ {
					j := f.withID(f.steady[(id*perTenant+q)%len(f.steady)])
					ch, err := s.Submit(context.Background(), name, j)
					if err != nil {
						failed.Add(1)
						continue
					}
					if _, ok := <-ch; ok {
						completed.Add(1)
					} else {
						failed.Add(1)
					}
				}
			}
		}()
	}
	for id := 0; id < tenants; id++ {
		ids <- id
	}
	close(ids)
	wg.Wait()

	sc.Admitted = completed.Load()
	sc.Rejected = failed.Load()
	sc.TenantsServed = tenants
	_, sc.AdmissionSeries = scrapeValue(reg, `liferaft_admission_total{`)
	var scrape strings.Builder
	if err := reg.WriteText(&scrape); err != nil {
		return sc, err
	}
	sc.ScrapeBytes = scrape.Len()
	// Cap is 256 live series per tenant-labeled family plus the "_other"
	// overflow row; a small slack covers the decision label dimension.
	const seriesBound = 257 * 2
	sc.Pass = completed.Load() == int64(tenants*perTenant) &&
		sc.AdmissionSeries <= seriesBound &&
		sc.ScrapeBytes <= scrapeBudgetBytes
	sc.Detail = fmt.Sprintf("%d completed, %d failed, %d admission samples, %d-byte scrape (bounds %d / %d)",
		completed.Load(), failed.Load(), sc.AdmissionSeries, sc.ScrapeBytes, seriesBound, scrapeBudgetBytes)
	return sc, nil
}

// runOverload runs every scenario and writes the verdict file.
func runOverload(path string) error {
	fmt.Println("building overload fixture (12,800 objects, 32 buckets, 4-shard virtual engine)...")
	f, err := newOverloadFixture()
	if err != nil {
		return err
	}

	// Solo baseline: the steady tenant alone through the serving layer.
	eng, err := f.newEngine(nil)
	if err != nil {
		return err
	}
	sSolo, err := server.New(eng, server.Config{MaxInFlight: 4})
	if err != nil {
		eng.Close()
		return err
	}
	if err := f.runSteadyLoop(sSolo, 1); err != nil {
		return err
	}
	soloP99 := sSolo.TenantSummary("steady").P99
	sSolo.Close()
	eng.Close()
	if soloP99 <= 0 {
		return fmt.Errorf("solo p99 is zero; fixture jobs too small")
	}
	// The controller's SLO doubles as the verdict line: 2x the steady
	// tenant's solo p99, the same bound the serving load test enforces.
	slo := time.Duration(2 * soloP99 * float64(time.Second))
	rep := overloadReport{
		GeneratedBy: "skybench -overload",
		SoloP99Sec:  soloP99,
		SLOP99Sec:   slo.Seconds(),
		Pass:        true,
	}
	fmt.Printf("solo steady p99 %.3fs (virtual); SLO set to %.3fs\n", soloP99, slo.Seconds())

	type stage struct {
		name string
		run  func() (overloadScenario, error)
	}
	stages := []stage{
		{"flash_crowd_adaptive", func() (overloadScenario, error) { return f.flashCrowd(server.RateAdaptive, slo, soloP99) }},
		{"flash_crowd_static", func() (overloadScenario, error) { return f.flashCrowd(server.RateStatic, slo, soloP99) }},
		{"diurnal_ramp", func() (overloadScenario, error) { return f.diurnalRamp(slo, soloP99) }},
		{"slow_loris", func() (overloadScenario, error) { return f.slowLoris(slo, soloP99) }},
		{"tenant_churn", f.tenantChurn},
	}
	for _, st := range stages {
		start := time.Now()
		sc, err := st.run()
		if err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
		verdict := "PASS"
		if !sc.Pass {
			verdict, rep.Pass = "FAIL", false
		}
		fmt.Printf("%-22s %s  p99=%.3fs (%.2fx solo)  admitted=%d rejected=%d  %s  [%v]\n",
			sc.Name, verdict, sc.SteadyP99Sec, sc.RatioVsSolo, sc.Admitted, sc.Rejected,
			sc.Detail, time.Since(start).Round(time.Millisecond))
		rep.Scenarios = append(rep.Scenarios, sc)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (overall: pass=%v)\n", path, rep.Pass)
	if !rep.Pass {
		return fmt.Errorf("overload verdicts failed; see %s", path)
	}
	return nil
}

// Command skybench regenerates the paper's tables and figures (and this
// reproduction's ablations) from the experiment harness.
//
// Usage:
//
//	skybench [-scale ci|mid|paper] [-exp all|fig2|fig4|fig5|fig6|fig7|fig8|indexonly|cache|ablations]
//	skybench -bench-json BENCH_4.json [-data-dir DIR]
//	skybench -overload BENCH_5.json
//	skybench -tiered BENCH_8.json [-data-dir DIR]
//
// Examples:
//
//	skybench                      # every experiment at CI scale
//	skybench -scale mid -exp fig7 # the headline comparison at 2,000 buckets
//	skybench -bench-json BENCH_4.json -data-dir /tmp/lfseg
//	    # scheduler perf snapshot for the trajectory, plus qps measured
//	    # against actual disks via the segment store under -data-dir
//	    # (built there on first use)
//	skybench -overload BENCH_5.json
//	    # serving-layer overload scenarios (flash crowd in adaptive and
//	    # static rate modes, diurnal ramp, slow loris, 10k-tenant churn)
//	    # with per-scenario SLO verdicts; exits nonzero on any failure
//	skybench -tiered BENCH_8.json -data-dir /tmp/lftier
//	    # tiered bucket cache scenario: untiered baseline vs cold/warm
//	    # disk tier with and without the schedule-driven prefetcher,
//	    # against a real segment store; exits nonzero on a failed gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"liferaft/internal/bucket"
	"liferaft/internal/catalog"
	"liferaft/internal/core"
	"liferaft/internal/exper"
	"liferaft/internal/geom"
	"liferaft/internal/segment"
	"liferaft/internal/trace"
	"liferaft/internal/workload"
)

func main() {
	scaleName := flag.String("scale", "ci", "experiment scale: ci, mid, or paper")
	expName := flag.String("exp", "all", "experiment: all, fig2, fig4, fig5, fig6, fig7, fig8, indexonly, cache, ablations")
	shards := flag.Int("shards", 1, "disk/worker shards per engine (1 = the paper's single disk)")
	benchJSON := flag.String("bench-json", "", "measure the scheduler hot path (vqps, picks/sec, allocs/op), print an old-vs-new comparison, write the snapshot to this file, and exit")
	dataDir := flag.String("data-dir", "", "with -bench-json: also replay a trace against the real-I/O segment store under this directory (built there on first use)")
	overloadJSON := flag.String("overload", "", "run the serving-layer overload scenarios, write per-scenario SLO verdicts to this file, and exit (nonzero on any failed verdict)")
	tieredJSON := flag.String("tiered", "", "run the tiered bucket-cache scenario (untiered baseline vs cold/warm disk tier, with and without schedule-driven prefetch) against a real segment store under -data-dir (a temp dir if unset), write the snapshot to this file, and exit (nonzero on any failed perf gate)")
	flag.Parse()

	if *overloadJSON != "" {
		if err := runOverload(*overloadJSON); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tieredJSON != "" {
		if err := runTiered(*tieredJSON, *dataDir); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *dataDir); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *dataDir != "" {
		fmt.Fprintln(os.Stderr, "skybench: -data-dir requires -bench-json")
		os.Exit(1)
	}
	if err := run(*scaleName, *expName, *shards); err != nil {
		fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
		os.Exit(1)
	}
}

// benchSnapshot is the BENCH_<pr>.json payload: one end-to-end virtual
// throughput figure plus the scheduler hot-path probes at three scales.
// Future PRs append their own snapshots, forming a perf trajectory.
type benchSnapshot struct {
	GeneratedBy     string  `json:"generated_by"`
	VQPS            float64 `json:"vqps"`
	PicksPerSec     float64 `json:"picks_per_sec_10k"`
	PickSpeedup     float64 `json:"pick_speedup_10k"`
	StepAllocsPerOp float64 `json:"step_allocs_per_op_10k"`
	// TracingOverheadPct is the virtual-throughput cost of tracing every
	// query on the CI replay (untraced vs traced); tracing spends no
	// virtual time, so anything beyond rounding noise means the
	// instrumentation perturbed the schedule. Budgeted under 5%.
	TracingOverheadPct float64           `json:"tracing_overhead_pct"`
	Probes             []core.PerfReport `json:"probes"`
	// RealIO reports the -data-dir replay: the first figures in this
	// repo measured against actual disks instead of the analytic model.
	RealIO *realIOSnapshot `json:"real_io,omitempty"`
}

// realIOSnapshot is the file-backed replay's measured result.
type realIOSnapshot struct {
	DataDir       string  `json:"data_dir"`
	Queries       int     `json:"queries"`
	Buckets       int     `json:"buckets"`
	StoreMB       float64 `json:"store_mb"`
	WriteMBps     float64 `json:"write_mbps,omitempty"` // 0 when the store already existed
	QPS           float64 `json:"qps"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	ReadMB        float64 `json:"read_mb"`
	SeqReads      int64   `json:"seq_reads"`
	IndexProbes   int64   `json:"index_probes"`
	ScanServices  int64   `json:"scan_services"`
	IndexServices int64   `json:"index_services"`
}

// runBenchJSON measures the scheduler hot path at B ∈ {1k, 10k, 100k}
// active buckets, replays the CI-scale trace for an end-to-end vqps
// figure, optionally replays a trace against the real segment store
// under dataDir, prints a benchstat-style old-vs-new table, and writes
// the snapshot to path.
func runBenchJSON(path, dataDir string) error {
	snap := benchSnapshot{GeneratedBy: "skybench -bench-json"}
	// Resolve the real-I/O store up front: a mismatched or unreadable
	// -data-dir must fail before minutes of virtual benchmarking, not
	// after.
	var fixture *realFixture
	if dataDir != "" {
		var err error
		fixture, err = prepareRealIO(dataDir)
		if err != nil {
			return err
		}
		defer fixture.close()
	}
	fmt.Println("scheduler pick: exhaustive scan (old) vs incremental index (new)")
	fmt.Printf("%-14s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "speedup")
	for _, b := range []int{1_000, 10_000, 100_000} {
		rep, err := core.PerfProbe(b)
		if err != nil {
			return err
		}
		snap.Probes = append(snap.Probes, rep)
		fmt.Printf("%-14s %14.0f %14.0f %8.1f%% %8.1fx\n",
			fmt.Sprintf("Pick/B=%d", b), rep.PickNsScan, rep.PickNsIndexed,
			100*(rep.PickNsIndexed-rep.PickNsScan)/rep.PickNsScan, rep.PickSpeedup)
		if b == 10_000 {
			snap.PicksPerSec = rep.PicksPerSec
			snap.PickSpeedup = rep.PickSpeedup
			snap.StepAllocsPerOp = rep.StepAllocsPerOp
		}
	}
	for _, p := range snap.Probes {
		fmt.Printf("Step/B=%-7d %14s %14.0f %9s %9s  (%.2f allocs/op)\n",
			p.Buckets, "-", p.StepNsPerOp, "-", "-", p.StepAllocsPerOp)
	}

	// End-to-end: the CI-scale saturated LifeRaft replay.
	scale, err := exper.ScaleByName("ci")
	if err != nil {
		return err
	}
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	cfg, _ := core.NewVirtual(env.Part, 0.5, false)
	_, stats, err := core.Run(cfg, env.Jobs, env.SaturatedOffsets())
	if err != nil {
		return err
	}
	snap.VQPS = stats.Throughput()
	fmt.Printf("end-to-end: %.2f virtual queries/sec over %d queries (%s scale)\n",
		snap.VQPS, stats.Completed, scale.Name)

	overhead, err := measureTracingOverhead(env)
	if err != nil {
		return err
	}
	snap.TracingOverheadPct = overhead
	fmt.Printf("tracing overhead: %+.2f%% vqps with every query traced (budget 5%%)\n", overhead)

	if fixture != nil {
		real, err := fixture.replay()
		if err != nil {
			return err
		}
		snap.RealIO = real
		fmt.Printf("real I/O (%s): %.2f queries/sec over %d queries in %.2fs — %.1f MB read in %d bucket scans + %d index probes\n",
			dataDir, real.QPS, real.Queries, real.ElapsedSec, real.ReadMB, real.SeqReads, real.IndexProbes)
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if overhead > 5 {
		return fmt.Errorf("tracing overhead %.2f%% exceeds the 5%% budget", overhead)
	}
	return nil
}

// measureTracingOverhead replays the standard CI trace untraced and
// then with every query carrying a span recorder (Finish included), and
// compares virtual throughput. Tracing spends no virtual time, so any
// vqps delta means the instrumentation perturbed the schedule itself —
// the gate keeps it under 5%. Wall-clock span-recording cost is covered
// by the allocation benchmarks in internal/trace; a wall-clock gate
// here would flake on shared CI hardware, where run-to-run jitter
// exceeds the signal.
func measureTracingOverhead(env *exper.Env) (float64, error) {
	replay := func(traced bool) (float64, error) {
		jobs := env.Jobs
		var rec *trace.Recorder
		var trs []*trace.Trace
		if traced {
			rec = trace.New(trace.Config{SlowThreshold: time.Hour})
			jobs = make([]core.Job, len(env.Jobs))
			trs = make([]*trace.Trace, len(env.Jobs))
			for i, j := range env.Jobs {
				jobs[i] = j
				trs[i] = rec.Start("bench", j.ID)
				jobs[i].Trace = trs[i]
			}
		}
		cfg, _ := core.NewVirtual(env.Part, 0.5, false)
		_, stats, err := core.Run(cfg, jobs, env.SaturatedOffsets())
		if err != nil {
			return 0, err
		}
		for _, tr := range trs {
			rec.Finish(tr)
		}
		return stats.Throughput(), nil
	}
	base, err := replay(false)
	if err != nil {
		return 0, err
	}
	traced, err := replay(true)
	if err != nil {
		return 0, err
	}
	if base <= 0 {
		return 0, fmt.Errorf("untraced replay completed no queries")
	}
	return 100 * (base - traced) / base, nil
}

// realFixture is the resolved -data-dir replay environment: the opened
// (and validated) segment store plus the matching synthetic catalog.
type realFixture struct {
	dataDir   string
	set       *segment.Set
	part      *bucket.Partition
	local     *catalog.Catalog
	seed      int64
	writeMBps float64 // 0 when the store already existed
}

// close releases the segment set. Set.Close is idempotent, so this is
// safe whether or not replay already handed the set to an engine whose
// store was closed.
func (f *realFixture) close() { f.set.Close() }

// prepareRealIO resolves the segment store under dataDir. An existing
// store's recorded geometry wins: skybench re-synthesizes the base
// survey the manifest describes, so any store skygen -write-segments
// built (at any flags) replays as-is. A missing store is built at a
// deliberately small default geometry — 200 buckets of 150 objects at
// a 512-byte stride (~15 MB) — so a CI runner finishes in seconds
// while every byte the scheduler charges for is genuinely moved.
func prepareRealIO(dataDir string) (*realFixture, error) {
	f := &realFixture{dataDir: dataDir}
	if _, err := os.Stat(filepath.Join(dataDir, segment.ManifestName)); err == nil {
		set, err := segment.OpenSet(dataDir)
		if err != nil {
			return nil, err
		}
		geo := set.Geometry()
		if geo.Derived {
			set.Close()
			return nil, fmt.Errorf("%s was built from derived archive %q; the replay can only re-synthesize base surveys", dataDir, geo.Catalog)
		}
		f.local, err = catalog.New(catalog.Config{
			Name: geo.Catalog, N: int(geo.TotalObjects), Seed: geo.Seed,
			GenLevel: geo.GenLevel, CacheTrixels: geo.TotalObjects <= 10_000_000,
		})
		if err != nil {
			set.Close()
			return nil, fmt.Errorf("re-synthesizing the catalog %s records: %w", dataDir, err)
		}
		f.part, err = bucket.NewPartition(f.local, geo.PerBucket, geo.ObjectBytes)
		if err != nil {
			set.Close()
			return nil, err
		}
		if err := set.Validate(f.part); err != nil {
			set.Close()
			return nil, err
		}
		f.set, f.seed = set, geo.Seed
		return f, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	const (
		objects     = 30_000
		seed        = 42
		genLevel    = 4
		perBucket   = 150
		objectBytes = 512
	)
	local, err := catalog.New(catalog.Config{
		Name: "sdss", N: objects, Seed: seed, GenLevel: genLevel, CacheTrixels: true,
	})
	if err != nil {
		return nil, err
	}
	part, err := bucket.NewPartition(local, perBucket, objectBytes)
	if err != nil {
		return nil, err
	}
	buildStart := time.Now()
	set, wst, err := segment.Ensure(dataDir, part, segment.WriteOptions{})
	if err != nil {
		return nil, err
	}
	f.local, f.part, f.set, f.seed = local, part, set, seed
	f.writeMBps = float64(wst.Bytes) / 1e6 / time.Since(buildStart).Seconds()
	fmt.Printf("built segment store: %d segments, %.1f MB at %.1f MB/s\n",
		wst.Segments, float64(wst.Bytes)/1e6, f.writeMBps)
	return f, nil
}

// replay runs a saturated trace through the file-backed engine:
// buckets served by pread from the fixture's segment store, costs
// measured on the real clock.
func (f *realFixture) replay() (*realIOSnapshot, error) {
	const queries = 120
	remote, err := catalog.NewDerived(f.local, catalog.DerivedConfig{
		Name: "twomass", Seed: f.seed + 1, Fraction: 0.8,
		JitterRad: geom.ArcsecToRad(1.5), CacheTrixels: f.local.Total() <= 10_000_000,
	})
	if err != nil {
		return nil, err
	}
	real := &realIOSnapshot{
		DataDir: f.dataDir, Queries: queries, Buckets: f.part.NumBuckets(),
		StoreMB:   float64(int64(f.local.Total())*f.part.ObjectBytes()) / 1e6,
		WriteMBps: f.writeMBps,
	}

	tcfg := workload.DefaultTraceConfig(f.seed)
	tcfg.NumQueries = queries
	tcfg.MinSelectivity, tcfg.MaxSelectivity = 0.05, 0.6
	trace, err := workload.Generate(tcfg)
	if err != nil {
		return nil, err
	}
	jobs := make([]core.Job, 0, len(trace.Queries))
	for _, q := range trace.Queries {
		jobs = append(jobs, core.Job{
			ID:      q.ID,
			Objects: workload.Materialize(q, remote, tcfg.Seed),
			Pred:    q.Predicate(),
		})
	}

	cfg, err := core.NewFileBackedFrom(f.part, 0.5, false, f.set)
	if err != nil {
		return nil, err // NewFileBackedFrom closed the set
	}
	defer cfg.Store.Close()
	offsets := make([]time.Duration, len(jobs)) // batch: saturated from t=0
	_, stats, err := core.Run(cfg, jobs, offsets)
	if err != nil {
		return nil, err
	}
	real.QPS = stats.Throughput()
	real.ElapsedSec = stats.Makespan.Seconds()
	real.ReadMB = float64(stats.Disk.SeqBytes) / 1e6
	real.SeqReads = stats.Disk.SeqReads
	real.IndexProbes = stats.Disk.Probes
	real.ScanServices = stats.ScanServices
	real.IndexServices = stats.IndexServices
	return real, nil
}

func run(scaleName, expName string, shards int) error {
	scale, err := exper.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	if shards < 1 {
		return fmt.Errorf("-shards %d must be >= 1", shards)
	}
	scale.Shards = shards
	if expName == "fig2" {
		// Figure 2 needs no environment: it is a property of the paper's
		// bucket geometry and the disk model.
		exper.Fig2(nil).Fprint(os.Stdout)
		return nil
	}
	fmt.Printf("building %s-scale environment (%d objects, %d queries)...\n",
		scale.Name, scale.LocalN, scale.NumQueries)
	start := time.Now()
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	fmt.Printf("environment ready in %v: %d buckets, %d jobs\n",
		time.Since(start).Round(time.Millisecond), env.Part.NumBuckets(), len(env.Jobs))

	type experiment struct {
		name string
		run  func() error
	}
	show := func(t exper.Table, err error) error {
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		return nil
	}
	var fig8grid []exper.GridPoint
	all := []experiment{
		{"fig2", func() error { exper.Fig2(env).Fprint(os.Stdout); return nil }},
		{"fig5", func() error { exper.Fig5(env).Fprint(os.Stdout); return nil }},
		{"fig6", func() error { exper.Fig6(env).Fprint(os.Stdout); return nil }},
		{"fig7", func() error { return show(exper.Fig7(env)) }},
		{"fig8", func() error {
			t, grid, err := exper.Fig8(env)
			fig8grid = grid
			return show(t, err)
		}},
		{"fig4", func() error { return show(exper.Fig4(env, fig8grid)) }},
		{"indexonly", func() error { return show(exper.IndexOnlyExp(env)) }},
		{"cache", func() error { return show(exper.CacheHitRates(env)) }},
		{"ablations", func() error {
			if err := show(exper.AblationCachePolicy(env)); err != nil {
				return err
			}
			if err := show(exper.AblationCacheSize(env)); err != nil {
				return err
			}
			if err := show(exper.AblationHybridThreshold(env)); err != nil {
				return err
			}
			if err := show(exper.AblationPolicy(env)); err != nil {
				return err
			}
			if err := show(exper.AblationQoS(env)); err != nil {
				return err
			}
			if err := show(exper.AblationOverflow(env)); err != nil {
				return err
			}
			exper.AblationVSCAN(env).Fprint(os.Stdout)
			return nil
		}},
	}
	if expName == "all" {
		for _, e := range all {
			t := time.Now()
			if err := e.run(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("  [%s done in %v]\n", e.name, time.Since(t).Round(time.Millisecond))
		}
		return nil
	}
	for _, e := range all {
		if e.name == expName {
			return e.run()
		}
	}
	return fmt.Errorf("unknown experiment %q", expName)
}

// Command skybench regenerates the paper's tables and figures (and this
// reproduction's ablations) from the experiment harness.
//
// Usage:
//
//	skybench [-scale ci|mid|paper] [-exp all|fig2|fig4|fig5|fig6|fig7|fig8|indexonly|cache|ablations]
//	skybench -bench-json BENCH_3.json
//
// Examples:
//
//	skybench                      # every experiment at CI scale
//	skybench -scale mid -exp fig7 # the headline comparison at 2,000 buckets
//	skybench -bench-json BENCH_3.json  # scheduler perf snapshot for the trajectory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"liferaft/internal/core"
	"liferaft/internal/exper"
)

func main() {
	scaleName := flag.String("scale", "ci", "experiment scale: ci, mid, or paper")
	expName := flag.String("exp", "all", "experiment: all, fig2, fig4, fig5, fig6, fig7, fig8, indexonly, cache, ablations")
	shards := flag.Int("shards", 1, "disk/worker shards per engine (1 = the paper's single disk)")
	benchJSON := flag.String("bench-json", "", "measure the scheduler hot path (vqps, picks/sec, allocs/op), print an old-vs-new comparison, write the snapshot to this file, and exit")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*scaleName, *expName, *shards); err != nil {
		fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
		os.Exit(1)
	}
}

// benchSnapshot is the BENCH_<pr>.json payload: one end-to-end virtual
// throughput figure plus the scheduler hot-path probes at three scales.
// Future PRs append their own snapshots, forming a perf trajectory.
type benchSnapshot struct {
	GeneratedBy     string            `json:"generated_by"`
	VQPS            float64           `json:"vqps"`
	PicksPerSec     float64           `json:"picks_per_sec_10k"`
	PickSpeedup     float64           `json:"pick_speedup_10k"`
	StepAllocsPerOp float64           `json:"step_allocs_per_op_10k"`
	Probes          []core.PerfReport `json:"probes"`
}

// runBenchJSON measures the scheduler hot path at B ∈ {1k, 10k, 100k}
// active buckets, replays the CI-scale trace for an end-to-end vqps
// figure, prints a benchstat-style old-vs-new table, and writes the
// snapshot to path.
func runBenchJSON(path string) error {
	snap := benchSnapshot{GeneratedBy: "skybench -bench-json"}
	fmt.Println("scheduler pick: exhaustive scan (old) vs incremental index (new)")
	fmt.Printf("%-14s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "speedup")
	for _, b := range []int{1_000, 10_000, 100_000} {
		rep, err := core.PerfProbe(b)
		if err != nil {
			return err
		}
		snap.Probes = append(snap.Probes, rep)
		fmt.Printf("%-14s %14.0f %14.0f %8.1f%% %8.1fx\n",
			fmt.Sprintf("Pick/B=%d", b), rep.PickNsScan, rep.PickNsIndexed,
			100*(rep.PickNsIndexed-rep.PickNsScan)/rep.PickNsScan, rep.PickSpeedup)
		if b == 10_000 {
			snap.PicksPerSec = rep.PicksPerSec
			snap.PickSpeedup = rep.PickSpeedup
			snap.StepAllocsPerOp = rep.StepAllocsPerOp
		}
	}
	for _, p := range snap.Probes {
		fmt.Printf("Step/B=%-7d %14s %14.0f %9s %9s  (%.2f allocs/op)\n",
			p.Buckets, "-", p.StepNsPerOp, "-", "-", p.StepAllocsPerOp)
	}

	// End-to-end: the CI-scale saturated LifeRaft replay.
	scale, err := exper.ScaleByName("ci")
	if err != nil {
		return err
	}
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	cfg, _ := core.NewVirtual(env.Part, 0.5, false)
	_, stats, err := core.Run(cfg, env.Jobs, env.SaturatedOffsets())
	if err != nil {
		return err
	}
	snap.VQPS = stats.Throughput()
	fmt.Printf("end-to-end: %.2f virtual queries/sec over %d queries (%s scale)\n",
		snap.VQPS, stats.Completed, scale.Name)

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func run(scaleName, expName string, shards int) error {
	scale, err := exper.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	if shards < 1 {
		return fmt.Errorf("-shards %d must be >= 1", shards)
	}
	scale.Shards = shards
	if expName == "fig2" {
		// Figure 2 needs no environment: it is a property of the paper's
		// bucket geometry and the disk model.
		exper.Fig2(nil).Fprint(os.Stdout)
		return nil
	}
	fmt.Printf("building %s-scale environment (%d objects, %d queries)...\n",
		scale.Name, scale.LocalN, scale.NumQueries)
	start := time.Now()
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	fmt.Printf("environment ready in %v: %d buckets, %d jobs\n",
		time.Since(start).Round(time.Millisecond), env.Part.NumBuckets(), len(env.Jobs))

	type experiment struct {
		name string
		run  func() error
	}
	show := func(t exper.Table, err error) error {
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		return nil
	}
	var fig8grid []exper.GridPoint
	all := []experiment{
		{"fig2", func() error { exper.Fig2(env).Fprint(os.Stdout); return nil }},
		{"fig5", func() error { exper.Fig5(env).Fprint(os.Stdout); return nil }},
		{"fig6", func() error { exper.Fig6(env).Fprint(os.Stdout); return nil }},
		{"fig7", func() error { return show(exper.Fig7(env)) }},
		{"fig8", func() error {
			t, grid, err := exper.Fig8(env)
			fig8grid = grid
			return show(t, err)
		}},
		{"fig4", func() error { return show(exper.Fig4(env, fig8grid)) }},
		{"indexonly", func() error { return show(exper.IndexOnlyExp(env)) }},
		{"cache", func() error { return show(exper.CacheHitRates(env)) }},
		{"ablations", func() error {
			if err := show(exper.AblationCachePolicy(env)); err != nil {
				return err
			}
			if err := show(exper.AblationCacheSize(env)); err != nil {
				return err
			}
			if err := show(exper.AblationHybridThreshold(env)); err != nil {
				return err
			}
			if err := show(exper.AblationPolicy(env)); err != nil {
				return err
			}
			if err := show(exper.AblationQoS(env)); err != nil {
				return err
			}
			if err := show(exper.AblationOverflow(env)); err != nil {
				return err
			}
			exper.AblationVSCAN(env).Fprint(os.Stdout)
			return nil
		}},
	}
	if expName == "all" {
		for _, e := range all {
			t := time.Now()
			if err := e.run(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("  [%s done in %v]\n", e.name, time.Since(t).Round(time.Millisecond))
		}
		return nil
	}
	for _, e := range all {
		if e.name == expName {
			return e.run()
		}
	}
	return fmt.Errorf("unknown experiment %q", expName)
}

// Command skybench regenerates the paper's tables and figures (and this
// reproduction's ablations) from the experiment harness.
//
// Usage:
//
//	skybench [-scale ci|mid|paper] [-exp all|fig2|fig4|fig5|fig6|fig7|fig8|indexonly|cache|ablations]
//
// Examples:
//
//	skybench                      # every experiment at CI scale
//	skybench -scale mid -exp fig7 # the headline comparison at 2,000 buckets
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"liferaft/internal/exper"
)

func main() {
	scaleName := flag.String("scale", "ci", "experiment scale: ci, mid, or paper")
	expName := flag.String("exp", "all", "experiment: all, fig2, fig4, fig5, fig6, fig7, fig8, indexonly, cache, ablations")
	shards := flag.Int("shards", 1, "disk/worker shards per engine (1 = the paper's single disk)")
	flag.Parse()

	if err := run(*scaleName, *expName, *shards); err != nil {
		fmt.Fprintf(os.Stderr, "skybench: %v\n", err)
		os.Exit(1)
	}
}

func run(scaleName, expName string, shards int) error {
	scale, err := exper.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	if shards < 1 {
		return fmt.Errorf("-shards %d must be >= 1", shards)
	}
	scale.Shards = shards
	if expName == "fig2" {
		// Figure 2 needs no environment: it is a property of the paper's
		// bucket geometry and the disk model.
		exper.Fig2(nil).Fprint(os.Stdout)
		return nil
	}
	fmt.Printf("building %s-scale environment (%d objects, %d queries)...\n",
		scale.Name, scale.LocalN, scale.NumQueries)
	start := time.Now()
	env, err := exper.NewEnv(scale)
	if err != nil {
		return err
	}
	fmt.Printf("environment ready in %v: %d buckets, %d jobs\n",
		time.Since(start).Round(time.Millisecond), env.Part.NumBuckets(), len(env.Jobs))

	type experiment struct {
		name string
		run  func() error
	}
	show := func(t exper.Table, err error) error {
		if err != nil {
			return err
		}
		t.Fprint(os.Stdout)
		return nil
	}
	var fig8grid []exper.GridPoint
	all := []experiment{
		{"fig2", func() error { exper.Fig2(env).Fprint(os.Stdout); return nil }},
		{"fig5", func() error { exper.Fig5(env).Fprint(os.Stdout); return nil }},
		{"fig6", func() error { exper.Fig6(env).Fprint(os.Stdout); return nil }},
		{"fig7", func() error { return show(exper.Fig7(env)) }},
		{"fig8", func() error {
			t, grid, err := exper.Fig8(env)
			fig8grid = grid
			return show(t, err)
		}},
		{"fig4", func() error { return show(exper.Fig4(env, fig8grid)) }},
		{"indexonly", func() error { return show(exper.IndexOnlyExp(env)) }},
		{"cache", func() error { return show(exper.CacheHitRates(env)) }},
		{"ablations", func() error {
			if err := show(exper.AblationCachePolicy(env)); err != nil {
				return err
			}
			if err := show(exper.AblationCacheSize(env)); err != nil {
				return err
			}
			if err := show(exper.AblationHybridThreshold(env)); err != nil {
				return err
			}
			if err := show(exper.AblationPolicy(env)); err != nil {
				return err
			}
			if err := show(exper.AblationQoS(env)); err != nil {
				return err
			}
			if err := show(exper.AblationOverflow(env)); err != nil {
				return err
			}
			exper.AblationVSCAN(env).Fprint(os.Stdout)
			return nil
		}},
	}
	if expName == "all" {
		for _, e := range all {
			t := time.Now()
			if err := e.run(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			fmt.Printf("  [%s done in %v]\n", e.name, time.Since(t).Round(time.Millisecond))
		}
		return nil
	}
	for _, e := range all {
		if e.name == expName {
			return e.run()
		}
	}
	return fmt.Errorf("unknown experiment %q", expName)
}

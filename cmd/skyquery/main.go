// Command skyquery is the federation portal client: it plans a serial
// left-deep cross-match over the archives you name and prints the joined
// rows, the way SkyQuery's web portal drove the real federation.
//
// Queries can be given as flags or in SkyQL, the SQL dialect SkyQuery
// exposed to astronomers:
//
//	skyquery -nodes sdss=127.0.0.1:7701,twomass=127.0.0.1:7702 \
//	         -archives twomass,sdss -ra 150 -dec 20 -radius 4 -limit 10
//
//	skyquery -nodes sdss=127.0.0.1:7701,twomass=127.0.0.1:7702 -query '
//	    SELECT t.id, s.id FROM twomass t, sdss s
//	    WHERE XMATCH(t, s) < 5 AND REGION(CIRCLE, 150, 20, 4) AND SAMPLE(0.5)'
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"liferaft/internal/federation"
	"liferaft/internal/skyql"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated name=addr pairs for every archive")
	archives := flag.String("archives", "twomass,sdss", "plan order; first archive drives the extraction")
	ra := flag.Float64("ra", 150, "region center right ascension, degrees")
	dec := flag.Float64("dec", 20, "region center declination, degrees")
	radius := flag.Float64("radius", 4, "region radius, degrees")
	match := flag.Float64("match", 5, "cross-match radius, arcseconds")
	sel := flag.Float64("sel", 0.5, "driving-archive selectivity (0,1]")
	magLo := flag.Float64("maglo", 0, "optional magnitude predicate lower bound")
	magHi := flag.Float64("maghi", 0, "optional magnitude predicate upper bound")
	limit := flag.Int("limit", 20, "max rows to print")
	seed := flag.Int64("seed", 1, "subsampling seed")
	queryText := flag.String("query", "", "SkyQL query text (overrides the per-field flags)")
	flag.Parse()

	if err := run(*nodes, *archives, *ra, *dec, *radius, *match, *sel, *magLo, *magHi, *limit, *seed, *queryText); err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(1)
	}
}

func run(nodes, archives string, ra, dec, radius, match, sel, magLo, magHi float64, limit int, seed int64, queryText string) error {
	if nodes == "" {
		return fmt.Errorf("-nodes is required (e.g. sdss=127.0.0.1:7701,twomass=127.0.0.1:7702)")
	}
	portal := federation.NewPortal()
	for _, pair := range strings.Split(nodes, ",") {
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("bad -nodes entry %q, want name=addr", pair)
		}
		cli := federation.Dial(addr)
		defer cli.Close()
		// Verify the daemon serves what we think it serves.
		served, err := cli.Archive()
		if err != nil {
			return fmt.Errorf("contacting %s at %s: %w", name, addr, err)
		}
		if served != name {
			return fmt.Errorf("node at %s serves %q, not %q", addr, served, name)
		}
		portal.Register(name, cli)
	}

	q := federation.Query{
		ID: 1, RA: ra, Dec: dec, RadiusDeg: radius,
		MatchRadiusArcsec: match, Selectivity: sel,
		Archives: strings.Split(archives, ","),
		MagLo:    magLo, MagHi: magHi, Seed: seed,
	}
	if queryText != "" {
		parsed, err := skyql.Parse(queryText)
		if err != nil {
			return err
		}
		if q, err = skyql.Compile(parsed, 1, seed); err != nil {
			return err
		}
		if parsed.Limit > 0 {
			limit = parsed.Limit
		}
		archives = strings.Join(q.Archives, ",")
	}
	rs, err := portal.Execute(q)
	if err != nil {
		return err
	}
	fmt.Printf("cross-match %s: %d rows\n", archives, len(rs.Rows))
	for _, a := range q.Archives[1:] {
		fmt.Printf("  %s: shipped %d objects, matched in %v\n", a, rs.Shipped[a], rs.HopElapsed[a])
	}
	names := q.Archives
	for i, row := range rs.Rows {
		if i >= limit {
			fmt.Printf("  ... %d more rows\n", len(rs.Rows)-limit)
			break
		}
		parts := make([]string, 0, len(names))
		for _, n := range names {
			if o, ok := row.Objects[n]; ok {
				parts = append(parts, fmt.Sprintf("%s:%d(mag %.1f)", n, o.ID, o.Mag))
			}
		}
		sort.Strings(parts)
		fmt.Printf("  row %3d: %s\n", i, strings.Join(parts, "  "))
	}
	return nil
}

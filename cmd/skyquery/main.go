// Command skyquery is the federation portal client: it plans a serial
// left-deep cross-match over the archives you name and prints the joined
// rows, the way SkyQuery's web portal drove the real federation.
//
// Queries can be given as flags or in SkyQL, the SQL dialect SkyQuery
// exposed to astronomers:
//
//	skyquery -nodes sdss=127.0.0.1:7701,twomass=127.0.0.1:7702 \
//	         -archives twomass,sdss -ra 150 -dec 20 -radius 4 -limit 10
//
//	skyquery -nodes sdss=127.0.0.1:7701,twomass=127.0.0.1:7702 -query '
//	    SELECT t.id, s.id FROM twomass t, sdss s
//	    WHERE XMATCH(t, s) < 5 AND REGION(CIRCLE, 150, 20, 4) AND SAMPLE(0.5)'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"liferaft/internal/federation"
	"liferaft/internal/skyql"
	"liferaft/internal/trace"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated name=addr pairs for every archive")
	archives := flag.String("archives", "twomass,sdss", "plan order; first archive drives the extraction")
	ra := flag.Float64("ra", 150, "region center right ascension, degrees")
	dec := flag.Float64("dec", 20, "region center declination, degrees")
	radius := flag.Float64("radius", 4, "region radius, degrees")
	match := flag.Float64("match", 5, "cross-match radius, arcseconds")
	sel := flag.Float64("sel", 0.5, "driving-archive selectivity (0,1]")
	magLo := flag.Float64("maglo", 0, "optional magnitude predicate lower bound")
	magHi := flag.Float64("maghi", 0, "optional magnitude predicate upper bound")
	limit := flag.Int("limit", 20, "max rows to print")
	seed := flag.Int64("seed", 1, "subsampling seed")
	queryText := flag.String("query", "", "SkyQL query text (overrides the per-field flags)")
	traced := flag.Bool("trace", false, "trace the query across every hop and print the span tree (remote nodes need tracing enabled)")
	flag.Parse()

	if err := run(*nodes, *archives, *ra, *dec, *radius, *match, *sel, *magLo, *magHi, *limit, *seed, *queryText, *traced); err != nil {
		fmt.Fprintf(os.Stderr, "skyquery: %v\n", err)
		os.Exit(1)
	}
}

func run(nodes, archives string, ra, dec, radius, match, sel, magLo, magHi float64, limit int, seed int64, queryText string, traced bool) error {
	if nodes == "" {
		return fmt.Errorf("-nodes is required (e.g. sdss=127.0.0.1:7701,twomass=127.0.0.1:7702)")
	}
	portal := federation.NewPortal()
	for _, pair := range strings.Split(nodes, ",") {
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("bad -nodes entry %q, want name=addr", pair)
		}
		cli := federation.Dial(addr)
		defer cli.Close()
		// Verify the daemon serves what we think it serves.
		served, err := cli.Archive()
		if err != nil {
			return fmt.Errorf("contacting %s at %s: %w", name, addr, err)
		}
		if served != name {
			return fmt.Errorf("node at %s serves %q, not %q", addr, served, name)
		}
		portal.Register(name, cli)
	}

	q := federation.Query{
		ID: 1, RA: ra, Dec: dec, RadiusDeg: radius,
		MatchRadiusArcsec: match, Selectivity: sel,
		Archives: strings.Split(archives, ","),
		MagLo:    magLo, MagHi: magHi, Seed: seed,
	}
	if queryText != "" {
		parsed, err := skyql.Parse(queryText)
		if err != nil {
			return err
		}
		if q, err = skyql.Compile(parsed, 1, seed); err != nil {
			return err
		}
		if parsed.Limit > 0 {
			limit = parsed.Limit
		}
		archives = strings.Join(q.Archives, ",")
	}
	ctx := context.Background()
	var rec *trace.Recorder
	var tr *trace.Trace
	if traced {
		rec = trace.New(trace.Config{})
		tr = rec.Start("skyquery", q.ID)
		ctx = trace.NewContext(ctx, tr)
	}
	rs, err := portal.ExecuteCtx(ctx, q)
	if traced {
		// Print the tree even on failure: an error-annotated hop span
		// shows which archive the plan died at.
		printTrace(rec.Finish(tr))
	}
	if err != nil {
		return err
	}
	fmt.Printf("cross-match %s: %d rows\n", archives, len(rs.Rows))
	for _, a := range q.Archives[1:] {
		fmt.Printf("  %s: shipped %d objects, matched in %v\n", a, rs.Shipped[a], rs.HopElapsed[a])
	}
	names := q.Archives
	for i, row := range rs.Rows {
		if i >= limit {
			fmt.Printf("  ... %d more rows\n", len(rs.Rows)-limit)
			break
		}
		parts := make([]string, 0, len(names))
		for _, n := range names {
			if o, ok := row.Objects[n]; ok {
				parts = append(parts, fmt.Sprintf("%s:%d(mag %.1f)", n, o.ID, o.Mag))
			}
		}
		sort.Strings(parts)
		fmt.Printf("  row %3d: %s\n", i, strings.Join(parts, "  "))
	}
	return nil
}

// printTrace renders the capture as a tree: portal-side steps in start
// order, each hop's stitched node-side spans nested under it.
func printTrace(d trace.Data) {
	fmt.Printf("trace %s: %d spans, %.3fs\n", d.TraceID, len(d.Spans), d.ResponseSec)
	spans := append([]trace.Span(nil), d.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	byNode := make(map[string][]trace.Span)
	var top []trace.Span
	for _, sp := range spans {
		if sp.Node != "" && sp.Stage != trace.StageFedMatch && sp.Stage != trace.StageFedExtract {
			byNode[sp.Node] = append(byNode[sp.Node], sp)
			continue
		}
		top = append(top, sp)
	}
	pr := func(indent string, sp trace.Span) {
		line := fmt.Sprintf("%s%-18s +%9.3fms %10.3fms", indent, sp.Stage,
			sp.Start.Sub(d.Start).Seconds()*1e3, sp.End.Sub(sp.Start).Seconds()*1e3)
		if sp.Node != "" {
			line += "  @" + sp.Node
		}
		if sp.Attr != "" {
			line += "  " + sp.Attr
		}
		if sp.N != 0 {
			line += fmt.Sprintf("  n=%d", sp.N)
		}
		if sp.Key != 0 {
			line += fmt.Sprintf("  bucket=%d", sp.Key)
		}
		if sp.Score != 0 {
			line += fmt.Sprintf("  ut=%.4g", sp.Score)
		}
		if sp.Err != "" {
			line += "  err=" + sp.Err
		}
		fmt.Println(line)
	}
	for _, sp := range top {
		pr("  ", sp)
		if sp.Stage == trace.StageFedMatch {
			for _, c := range byNode[sp.Node] {
				pr("      ", c)
			}
		}
	}
	if d.CacheHits+d.CacheMisses > 0 {
		fmt.Printf("  cache: %d hits, %d misses\n", d.CacheHits, d.CacheMisses)
	}
	if d.Dropped > 0 {
		fmt.Printf("  (%d spans dropped past the %d-span slab)\n", d.Dropped, trace.MaxSpans)
	}
}

package main

import (
	"strings"
	"testing"

	"liferaft/internal/catalog"
	"liferaft/internal/federation"
	"liferaft/internal/simclock"
)

// TestRunEndToEnd drives the portal client against real TCP nodes,
// covering both the flag and SkyQL paths.
func TestRunEndToEnd(t *testing.T) {
	base, err := catalog.New(catalog.Config{
		Name: "sdss", N: 20000, Seed: 1, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	der, err := catalog.NewDerived(base, catalog.DerivedConfig{
		Name: "twomass", Seed: 2, Fraction: 0.8, JitterRad: 1e-5, CacheTrixels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.NewVirtual()
	mk := func(c *catalog.Catalog) (*federation.Node, *federation.Server) {
		n, err := federation.NewNode(federation.NodeConfig{
			Catalog: c, ObjectsPerBucket: 400, Alpha: 0.25, Clock: clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := federation.Serve(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close(); n.Close() })
		return n, s
	}
	_, sdssSrv := mk(base)
	_, tmSrv := mk(der)
	nodes := "sdss=" + sdssSrv.Addr().String() + ",twomass=" + tmSrv.Addr().String()

	// Flags path.
	if err := run(nodes, "twomass,sdss", 150, 20, 8, 5, 0.8, 0, 0, 5, 1, "", true); err != nil {
		t.Fatalf("flags path: %v", err)
	}
	// SkyQL path.
	q := `SELECT t.id, s.id FROM twomass t, sdss s
	      WHERE XMATCH(t, s) < 5 AND REGION(CIRCLE, 150, 20, 8) AND SAMPLE(0.8) LIMIT 3`
	if err := run(nodes, "", 0, 0, 0, 0, 0.5, 0, 0, 5, 1, q, false); err != nil {
		t.Fatalf("skyql path: %v", err)
	}
	// Bad SkyQL propagates.
	if err := run(nodes, "", 0, 0, 0, 0, 0.5, 0, 0, 5, 1, "SELECT nonsense", false); err == nil {
		t.Error("bad SkyQL should fail")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("", "a,b", 0, 0, 1, 1, 0.5, 0, 0, 5, 1, "", false); err == nil {
		t.Error("missing -nodes should fail")
	}
	if err := run("badpair", "a,b", 0, 0, 1, 1, 0.5, 0, 0, 5, 1, "", false); err == nil ||
		!strings.Contains(err.Error(), "name=addr") {
		t.Errorf("bad pair error = %v", err)
	}
	if err := run("sdss=127.0.0.1:1", "a,b", 0, 0, 1, 1, 0.5, 0, 0, 5, 1, "", false); err == nil {
		t.Error("dead node should fail")
	}
}

// Persist: build an on-disk segment store for a synthetic sky, then run
// the same cross-match trace twice — once against the analytic disk
// model on the virtual clock (the paper-reproduction configuration) and
// once against the segment files with real I/O — and show that the two
// backends return identical matches while only the second one actually
// moves bytes.
//
//	go run ./examples/persist
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"liferaft"
)

func main() {
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 60_000, Seed: 7, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 8, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// A 256-byte on-disk stride keeps this demo's store at ~15 MB; the
	// paper's geometry would use the default 4 KiB SDSS row.
	part, err := liferaft.NewPartition(local, 300, 256)
	if err != nil {
		log.Fatal(err)
	}

	dir := filepath.Join(os.TempDir(), "liferaft-persist-demo")
	start := time.Now()
	set, wst, err := liferaft.EnsureSegments(dir, part, liferaft.SegmentWriteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if wst.Segments > 0 {
		fmt.Printf("built segment store under %s: %d segments, %.1f MB in %v\n",
			dir, wst.Segments, float64(wst.Bytes)/1e6, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("reusing segment store under %s\n", dir)
	}

	// A burst of overlapping queries, materialized once and replayed
	// through both backends.
	var jobs []liferaft.Job
	for i, r := range []struct{ ra, dec, radius float64 }{
		{150, 20, 6}, {152, 21, 5}, {150, 19, 4}, {205, 25, 5}, {203, 24, 6},
	} {
		q := liferaft.Query{
			ID:             uint64(i),
			Center:         liferaft.FromRaDec(r.ra, r.dec),
			RadiusRad:      liferaft.Radians(r.radius),
			MatchRadiusRad: liferaft.ArcsecToRad(5),
			Selectivity:    0.5,
		}
		jobs = append(jobs, liferaft.Job{ID: q.ID, Objects: liferaft.MaterializeQuery(q, remote, 1)})
	}
	offsets := make([]time.Duration, len(jobs)) // all at once

	simCfg, _ := liferaft.NewVirtualConfig(part, 0.25, true)
	simRes, simStats, err := liferaft.Run(simCfg, jobs, offsets)
	if err != nil {
		log.Fatal(err)
	}

	fileCfg, err := liferaft.NewFileBackedConfigFrom(part, 0.25, true, set)
	if err != nil {
		log.Fatal(err)
	}
	defer fileCfg.Store.Close()
	fileRes, fileStats, err := liferaft.Run(fileCfg, jobs, offsets)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %12s %12s %12s\n", "backend", "matches", "seq reads", "MB moved")
	sum := func(rs []liferaft.Result) (m int) {
		for _, r := range rs {
			m += r.Matches
		}
		return
	}
	fmt.Printf("%-8s %12d %12d %12.1f  (modeled: %v of virtual disk time)\n",
		"sim", sum(simRes), simStats.Disk.SeqReads, float64(simStats.Disk.SeqBytes)/1e6, simStats.Disk.BusyTime.Round(time.Millisecond))
	fmt.Printf("%-8s %12d %12d %12.1f  (measured: %v of real wall time)\n",
		"file", sum(fileRes), fileStats.Disk.SeqReads, float64(fileStats.Disk.SeqBytes)/1e6, fileStats.Makespan.Round(time.Millisecond))
	if sum(simRes) == sum(fileRes) {
		fmt.Println("\nidentical matches from both backends; only the file backend touched the disk")
	} else {
		fmt.Println("\nBACKENDS DIVERGED — this is a bug")
	}
}

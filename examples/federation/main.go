// Federation: an in-process three-archive SkyQuery federation. The portal
// plans a serial left-deep cross-match (twomass ⋈ sdss ⋈ usnob), ships
// intermediate object lists from site to site, and each site's LifeRaft
// engine batches whatever concurrent work it sees.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"sync"

	"liferaft"
)

func main() {
	// One base survey, two re-observations: three correlated archives.
	base, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 80_000, Seed: 21, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	twomass, err := liferaft.NewDerivedCatalog(base, liferaft.DerivedConfig{
		Name: "twomass", Seed: 22, Fraction: 0.7,
		JitterRad: liferaft.ArcsecToRad(1), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	usnob, err := liferaft.NewDerivedCatalog(base, liferaft.DerivedConfig{
		Name: "usnob", Seed: 23, Fraction: 0.6,
		JitterRad: liferaft.ArcsecToRad(1), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each archive is an independent node with its own LifeRaft engine;
	// the shared virtual clock makes modeled I/O cost instantaneous.
	clk := liferaft.NewVirtualClock()
	portal := liferaft.NewFedPortal()
	for _, cat := range []*liferaft.Catalog{base, twomass, usnob} {
		node, err := liferaft.NewFedNode(liferaft.FedNodeConfig{
			Catalog: cat, ObjectsPerBucket: 400, Alpha: 0.25, Clock: clk,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		portal.Register(cat.Name(), liferaft.FedInProc{Node: node})
	}
	fmt.Printf("federation: %v\n", portal.Archives())

	// Several users cross-match different regions concurrently; each
	// node batches the overlapping work.
	var wg sync.WaitGroup
	type outcome struct {
		rows int
		err  error
	}
	outcomes := make([]outcome, 4)
	for i := range outcomes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := portal.Execute(liferaft.FedQuery{
				ID: uint64(i + 1), RA: 140 + float64(5*i), Dec: 15, RadiusDeg: 5,
				MatchRadiusArcsec: 5, Selectivity: 0.4,
				Archives: []string{"twomass", "sdss", "usnob"},
				Seed:     int64(i),
			})
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			outcomes[i] = outcome{rows: len(rs.Rows)}
			if i == 0 {
				for a, n := range rs.Shipped {
					fmt.Printf("  query 1 shipped %d objects to %s\n", n, a)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, o := range outcomes {
		if o.err != nil {
			log.Fatalf("query %d: %v", i+1, o.err)
		}
		fmt.Printf("query %d: %d three-way matched rows\n", i+1, o.rows)
	}
	fmt.Println("\nevery row is an object observed by all three instruments within 5 arcsec")
}

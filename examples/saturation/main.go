// Saturation: derive the throughput/response-time trade-off curves of
// paper §4 (Figure 4) for a small workload, then use the tolerance-based
// tuner to pick the age bias α a deployment should run at each saturation
// — large α (arrival order) when load is light, small α (contention-driven
// batching) when load is heavy.
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"
	"time"

	"liferaft"
)

func main() {
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 100_000, Seed: 31, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 32, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	part, err := liferaft.NewPartition(local, 400, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A representative workload (paper §4: curves are derived offline
	// from a representative trace).
	tcfg := liferaft.DefaultTraceConfig(33)
	tcfg.NumQueries = 200
	tcfg.MinSelectivity, tcfg.MaxSelectivity = 0.1, 0.8
	trace, err := liferaft.GenerateTrace(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	var jobs []liferaft.Job
	for _, q := range trace.Queries {
		jobs = append(jobs, liferaft.Job{
			ID: q.ID, Objects: liferaft.MaterializeQuery(q, remote, tcfg.Seed),
		})
	}

	measure := func(rate float64) liferaft.Curve {
		offs := liferaft.PoissonArrivals{RatePerSec: rate}.Offsets(len(jobs), 5)
		curve, err := liferaft.BuildCurve(nil, func(alpha float64) ([]liferaft.Result, liferaft.RunStats, error) {
			cfg, _ := liferaft.NewVirtualConfig(part, alpha, false)
			return liferaft.Run(cfg, jobs, offs)
		})
		if err != nil {
			log.Fatal(err)
		}
		return curve
	}

	tuner, err := liferaft.NewTuner(0.20) // paper: 20% throughput tolerance
	if err != nil {
		log.Fatal(err)
	}
	for _, rate := range []float64{1, 4, 16} {
		curve := measure(rate)
		fmt.Printf("\nsaturation %.0f q/s (normalized curve):\n", rate)
		for _, p := range curve.Normalized() {
			fmt.Printf("  α=%.2f  throughput=%.2f  response=%.2f\n", p.Alpha, p.Throughput, p.RespTime)
		}
		if err := tuner.AddCurve(rate, curve); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\ntuner selections (20% throughput tolerance):")
	for _, rate := range []float64{0.5, 2, 6, 20} {
		alpha, err := tuner.Alpha(rate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  at %5.1f q/s run α=%.2f\n", rate, alpha)
	}

	// A live deployment feeds the tuner from the arrival-rate estimator.
	est, _ := liferaft.NewSaturationEstimator(time.Minute)
	now := time.Now()
	for i := 0; i < 100; i++ {
		est.Observe(now.Add(time.Duration(i) * 250 * time.Millisecond)) // 4 q/s burst
	}
	alpha, _ := tuner.Alpha(est.Rate())
	fmt.Printf("\nestimator sees %.1f q/s -> engine should run α=%.2f\n", est.Rate(), alpha)
}

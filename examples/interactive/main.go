// Interactive: the starvation problem that motivates LifeRaft (§1) and
// the QoS extension of §6. A stream of hour-long batch cross-matches is
// mixed with short interactive look-ups; we compare how the short queries
// fare under NoShare (strict arrival order), greedy LifeRaft, aged
// LifeRaft, and LifeRaft with age depreciation for long queries.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"liferaft"
)

func main() {
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 120_000, Seed: 41, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 42, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	part, err := liferaft.NewPartition(local, 400, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Build the mix: broad batch surveys alternating with interactive
	// pinpoint look-ups, arriving faster than the batch work drains.
	rng := rand.New(rand.NewSource(43))
	var jobs []liferaft.Job
	var isShort []bool
	var offsets []time.Duration
	id := uint64(0)
	t := time.Duration(0)
	for i := 0; i < 120; i++ {
		short := i%2 != 0 // alternate batch and interactive
		q := liferaft.Query{
			ID:             id,
			Center:         liferaft.FromRaDec(rng.Float64()*40+130, rng.Float64()*20+10),
			MatchRadiusRad: liferaft.ArcsecToRad(5),
		}
		if short {
			q.RadiusRad = 0.6 * 3.14159 / 180 // ~a field of view
			q.Selectivity = 0.9
		} else {
			q.RadiusRad = 14 * 3.14159 / 180 // a whole region survey
			q.Selectivity = 0.8
		}
		jobs = append(jobs, liferaft.Job{
			ID: id, Objects: liferaft.MaterializeQuery(q, remote, 9),
		})
		isShort = append(isShort, short)
		offsets = append(offsets, t)
		t += 120 * time.Millisecond
		id++
	}

	meanBy := func(res []liferaft.Result, short bool) time.Duration {
		var sum time.Duration
		n := 0
		for _, r := range res {
			if isShort[r.QueryID] == short {
				sum += r.ResponseTime()
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / time.Duration(n)
	}

	show := func(name string, res []liferaft.Result, stats liferaft.RunStats) {
		fmt.Printf("%-28s short-query resp %8v   long-query resp %8v   throughput %.2f q/s\n",
			name,
			meanBy(res, true).Round(10*time.Millisecond),
			meanBy(res, false).Round(10*time.Millisecond),
			stats.Throughput())
	}

	// NoShare: strict arrival order, no sharing — short queries queue
	// behind every long query ahead of them.
	cfg, _ := liferaft.NewVirtualConfig(part, 0, false)
	res, stats, err := liferaft.RunNoShare(cfg, jobs, offsets)
	if err != nil {
		log.Fatal(err)
	}
	show("NoShare (arrival order)", res, stats)

	for _, alpha := range []float64{0, 0.75} {
		cfg, _ := liferaft.NewVirtualConfig(part, alpha, false)
		res, stats, err := liferaft.Run(cfg, jobs, offsets)
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("LifeRaft α=%.2f", alpha), res, stats)
	}

	// The §6 QoS extension: long queries' requests age more slowly, so
	// interactive queries keep their place without giving up batching.
	cfgQoS, _ := liferaft.NewVirtualConfig(part, 0.75, false)
	cfgQoS.AgeDepreciationGamma = 4
	res, stats, err = liferaft.Run(cfgQoS, jobs, offsets)
	if err != nil {
		log.Fatal(err)
	}
	show("LifeRaft α=0.75 + QoS γ=4", res, stats)

	fmt.Println("\nthe QoS row keeps batch throughput while pulling interactive latency down")
}

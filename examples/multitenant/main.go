// Multi-tenant serving: N competing tenants share one 4-shard LifeRaft
// engine through the admission-control + fair-queueing layer. A
// saturating, bursty tenant floods the node while two steady tenants run
// one query at a time; the serving layer keeps the steady tenants'
// response times near their solo baseline, where submitting the same flood
// straight into the engine multiplies them.
//
//	go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"liferaft"
	"liferaft/internal/xmatch"
)

var nextID atomic.Uint64

// freshJob clones a template job under a fresh engine-unique query ID.
func freshJob(j liferaft.Job) liferaft.Job {
	j.ID = nextID.Add(1)
	objs := make([]xmatch.WorkloadObject, len(j.Objects))
	for i, wo := range j.Objects {
		wo.QueryID = j.ID
		objs[i] = wo
	}
	j.Objects = objs
	return j
}

func buildJobs(remote *liferaft.Catalog, seed int64, n int, minSel, maxSel float64) []liferaft.Job {
	cfg := liferaft.DefaultTraceConfig(seed)
	cfg.NumQueries = n
	cfg.MinSelectivity, cfg.MaxSelectivity = minSel, maxSel
	trace, err := liferaft.GenerateTrace(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var jobs []liferaft.Job
	for _, q := range trace.Queries {
		jobs = append(jobs, liferaft.Job{
			Objects: liferaft.MaterializeQuery(q, remote, cfg.Seed), Pred: q.Predicate(),
		})
	}
	return jobs
}

func main() {
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 12_800, Seed: 51, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 52, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	part, err := liferaft.NewPartition(local, 400, 0) // 32 buckets
	if err != nil {
		log.Fatal(err)
	}
	steadyJobs := buildJobs(remote, 61, 20, 0.1, 0.3)
	floodJobs := buildJobs(remote, 67, 300, 0.5, 1.0)

	newEngine := func() *liferaft.Live {
		cfg, _ := liferaft.NewVirtualConfig(part, 0.5, false)
		cfg.Shards = 4
		eng, err := liferaft.NewLive(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return eng
	}
	serveCfg := liferaft.ServerConfig{
		MaxInFlight: 4,
		Tenants: []liferaft.TenantConfig{
			{Name: "alice", Rate: -1},
			{Name: "bob", Rate: -1},
			{Name: "flood", Rate: 2, Burst: 4, QueueDepth: 8},
		},
	}

	steady := func(s *liferaft.Server, tenant string) {
		for _, j := range steadyJobs {
			ch, err := s.Submit(context.Background(), tenant, freshJob(j))
			if err != nil {
				log.Fatalf("%s: %v", tenant, err)
			}
			<-ch
		}
	}

	// Solo baseline: alice alone on an idle engine.
	eng := newEngine()
	s, err := liferaft.NewServer(eng, serveCfg)
	if err != nil {
		log.Fatal(err)
	}
	steady(s, "alice")
	soloP99 := s.TenantSummary("alice").P99
	s.Close()
	eng.Close()

	// Competing tenants behind admission control: the flood tenant
	// hammers the node open loop; alice and bob pace themselves.
	eng = newEngine()
	s, err = liferaft.NewServer(eng, serveCfg)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := s.Submit(context.Background(), "flood", freshJob(floodJobs[i%len(floodJobs)])); err != nil {
				time.Sleep(time.Millisecond) // rejected: back off briefly
			}
		}
	}()
	var wg sync.WaitGroup
	for _, tenant := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			steady(s, tenant)
		}(tenant)
	}
	wg.Wait()
	close(done)
	floodWG.Wait()

	fmt.Printf("alice solo p99: %.3fs (virtual)\n\n", soloP99)
	fmt.Println("with admission control + DRR fair queueing:")
	fmt.Printf("%-8s %9s %9s %9s %9s %9s %9s\n",
		"tenant", "submitted", "admitted", "rejected", "completed", "p50(s)", "p99(s)")
	for _, ts := range s.Stats().Tenants {
		fmt.Printf("%-8s %9d %9d %9d %9d %9.3f %9.3f\n",
			ts.Tenant, ts.Submitted, ts.Admitted, ts.RejectedRate+ts.RejectedQueue,
			ts.Completed, ts.RespTime.P50, ts.RespTime.P99)
	}
	fairP99 := s.TenantSummary("alice").P99
	s.Close()
	eng.Close()

	// The same flood without the serving layer: everything lands in the
	// engine's workload queues and the steady tenant pays for it.
	eng = newEngine()
	preload := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := eng.Submit(freshJob(floodJobs[i%len(floodJobs)])); err != nil {
				log.Fatal(err)
			}
		}
	}
	preload(500)
	var rawWorst time.Duration
	for _, j := range steadyJobs {
		ch, err := eng.Submit(freshJob(j))
		if err != nil {
			log.Fatal(err)
		}
		r := <-ch
		if rt := r.ResponseTime(); rt > rawWorst {
			rawWorst = rt
		}
		preload(30)
	}
	eng.Close()

	fmt.Printf("\nalice p99, engine shared fairly:   %.3fs (%.1fx solo)\n", fairP99, fairP99/soloP99)
	fmt.Printf("alice worst, no serving layer:     %.3fs (%.1fx solo)\n",
		rawWorst.Seconds(), rawWorst.Seconds()/soloP99)
	fmt.Println("\nper-tenant fairness holds: the flood tenant is rate-limited and")
	fmt.Println("fair-queued, so its burst queues behind its own quota instead of")
	fmt.Println("in front of everyone else's queries.")
}

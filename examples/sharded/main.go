// Sharded execution: replay one uniform query trace through the LifeRaft
// engine at 1, 2, 4, and 8 disk/worker shards and print the virtual-clock
// scan-throughput scaling, the per-shard breakdown, and the invariance of
// the query answers across shard counts.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"time"

	"liferaft"
)

func main() {
	// The acceptance geometry: 32 equal buckets under a uniform trace.
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 12_800, Seed: 11, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 12, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	part, err := liferaft.NewPartition(local, 400, 0)
	if err != nil {
		log.Fatal(err)
	}

	tcfg := liferaft.DefaultTraceConfig(13)
	tcfg.NumQueries = 96
	tcfg.HotFraction = 0 // uniform sky coverage
	tcfg.MinSelectivity, tcfg.MaxSelectivity = 0.3, 1.0
	trace, err := liferaft.GenerateTrace(tcfg)
	if err != nil {
		log.Fatal(err)
	}
	var jobs []liferaft.Job
	for _, q := range trace.Queries {
		jobs = append(jobs, liferaft.Job{
			ID: q.ID, Objects: liferaft.MaterializeQuery(q, remote, tcfg.Seed), Pred: q.Predicate(),
		})
	}
	// A saturating stream: one arrival per virtual millisecond.
	offs := make([]time.Duration, len(jobs))
	for i := range offs {
		offs[i] = time.Duration(i) * time.Millisecond
	}
	fmt.Printf("%d buckets, %d queries, uniform arrivals\n\n", part.NumBuckets(), len(jobs))

	var base float64
	var matches1 int
	for _, shards := range []int{1, 2, 4, 8} {
		cfg, _ := liferaft.NewVirtualConfig(part, 0.25, true)
		cfg.Shards = shards // the only knob that changes
		results, stats, err := liferaft.Run(cfg, jobs, offs)
		if err != nil {
			log.Fatal(err)
		}
		matches := 0
		for _, r := range results {
			matches += r.Matches
		}
		qps := stats.Throughput()
		if shards == 1 {
			base, matches1 = qps, matches
		}
		fmt.Printf("shards=%d: makespan %8v  throughput %7.1f q/s (%.2fx)  matches %d\n",
			shards, stats.Makespan.Round(time.Millisecond), qps, qps/base, matches)
		for _, ss := range stats.PerShard {
			fmt.Printf("   shard %d: %2d buckets, %3d jobs, %3d services, disk busy %v\n",
				ss.Shard, ss.Buckets, ss.Jobs, ss.Stats.BucketsServed,
				ss.Stats.Disk.BusyTime.Round(time.Millisecond))
		}
		if matches != matches1 {
			log.Fatalf("answers changed with shards=%d: %d matches vs %d", shards, matches, matches1)
		}
	}
	fmt.Println("\nsame answers at every shard count; only the wall clock moved")
}

// Quickstart: build a small synthetic sky, partition it into equal-sized
// buckets, and run a handful of concurrent cross-match queries through the
// LifeRaft scheduler, printing the matches each query produced and the
// sharing the scheduler achieved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"liferaft"
)

func main() {
	// A base survey ("sdss") and a second instrument re-observing the
	// same sky ("twomass") — the only kind of catalog pair a
	// cross-match is meaningful between.
	local, err := liferaft.NewCatalog(liferaft.CatalogConfig{
		Name: "sdss", N: 100_000, Seed: 7, GenLevel: 4, CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	remote, err := liferaft.NewDerivedCatalog(local, liferaft.DerivedConfig{
		Name: "twomass", Seed: 8, Fraction: 0.8,
		JitterRad: liferaft.ArcsecToRad(1.5), CacheTrixels: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Equal-sized buckets over the HTM space-filling curve (paper §3.1).
	part, err := liferaft.NewPartition(local, 500, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned %d objects into %d buckets of %d\n",
		local.Total(), part.NumBuckets(), part.PerBucket())

	// Three concurrent queries over overlapping sky regions: the overlap
	// is what LifeRaft exploits.
	regions := []struct {
		ra, dec, radius float64
	}{
		{150, 20, 6},
		{152, 21, 5}, // overlaps the first
		{150, 19, 4}, // overlaps both
	}
	var jobs []liferaft.Job
	for i, r := range regions {
		q := liferaft.Query{
			ID:             uint64(i),
			Center:         liferaft.FromRaDec(r.ra, r.dec),
			RadiusRad:      r.radius * 3.14159 / 180,
			MatchRadiusRad: liferaft.ArcsecToRad(5),
			Selectivity:    0.5,
		}
		jobs = append(jobs, liferaft.Job{
			ID:      q.ID,
			Objects: liferaft.MaterializeQuery(q, remote, 1),
		})
	}

	// The standard stack: virtual clock, paper-calibrated disk model,
	// 20-bucket LRU cache, age bias α=0.25. Materialized results.
	cfg, _ := liferaft.NewVirtualConfig(part, 0.25, true)
	offsets := []time.Duration{0, time.Second, 2 * time.Second}
	results, stats, err := liferaft.Run(cfg, jobs, offsets)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		fmt.Printf("query %d: %d workload objects in %d bucket-units, %d matches, response %v\n",
			r.QueryID, len(jobs[r.QueryID].Objects), r.Assignments, r.Matches,
			r.ResponseTime().Round(time.Millisecond))
		for _, p := range r.Pairs[:min(3, len(r.Pairs))] {
			fmt.Printf("   %v\n", p)
		}
	}
	fmt.Printf("\nscheduler: %v\n", stats)
	fmt.Printf("the three queries shared bucket reads: %d sequential reads served %d bucket-batches\n",
		stats.Disk.SeqReads, stats.BucketsServed)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
